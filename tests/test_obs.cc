/**
 * @file
 * Tests for the observability library: metrics-registry semantics and
 * JSON/CSV export round-trips (parsed back with a minimal JSON reader),
 * pipeline-tracer ring-buffer wraparound and exporters, TRB_LOG level
 * filtering, and phase-profiler accumulation.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/pipeline_trace.hh"
#include "obs/profile.hh"

namespace trb
{
namespace
{

// ---- A minimal JSON reader for the subset the exporters emit:
// objects, arrays, strings, numbers.  Flattens to path -> number.

struct JsonReader
{
    const std::string &text;
    std::size_t pos = 0;
    std::map<std::string, double> values;

    explicit JsonReader(const std::string &t) : text(t) {}

    void
    skipWs()
    {
        while (pos < text.size() && std::isspace(
                   static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        return pos < text.size() ? text[pos] : '\0';
    }

    bool
    expect(char c)
    {
        if (peek() != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!expect('"'))
            return false;
        out.clear();
        while (pos < text.size() && text[pos] != '"') {
            if (text[pos] == '\\' && pos + 1 < text.size())
                ++pos;
            out.push_back(text[pos++]);
        }
        return expect('"');
    }

    bool
    parseValue(const std::string &path)
    {
        char c = peek();
        if (c == '{') {
            ++pos;
            if (peek() == '}')
                return expect('}');
            do {
                std::string key;
                if (!parseString(key) || !expect(':'))
                    return false;
                if (!parseValue(path.empty() ? key : path + "/" + key))
                    return false;
            } while (expect(','));
            return expect('}');
        }
        if (c == '[') {
            ++pos;
            std::size_t i = 0;
            if (peek() == ']')
                return expect(']');
            do {
                if (!parseValue(path + "/" + std::to_string(i++)))
                    return false;
            } while (expect(','));
            return expect(']');
        }
        if (c == '"') {
            std::string s;
            return parseString(s);
        }
        std::size_t start = pos;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '-' || text[pos] == '+' || text[pos] == '.' ||
                text[pos] == 'e' || text[pos] == 'E'))
            ++pos;
        if (pos == start)
            return false;
        values[path] = std::stod(text.substr(start, pos - start));
        return true;
    }

    bool
    parse()
    {
        bool ok = parseValue("");
        skipWs();
        return ok && pos == text.size();
    }
};

TEST(MetricsRegistry, CountersGaugesAndOrder)
{
    obs::MetricsRegistry reg;
    reg.counter("core.rob.full_stalls") = 5;
    reg.counter("cache.l1i.mshr_merges") += 3;
    reg.setGauge("sim.ipc", 1.25);
    EXPECT_EQ(reg.counterValue("core.rob.full_stalls"), 5u);
    EXPECT_EQ(reg.counterValue("cache.l1i.mshr_merges"), 3u);
    EXPECT_EQ(reg.counterValue("absent"), 0u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("sim.ipc"), 1.25);
    ASSERT_EQ(reg.counters().size(), 2u);
    EXPECT_EQ(reg.counters()[0].path, "core.rob.full_stalls");
    EXPECT_EQ(reg.counters()[1].path, "cache.l1i.mshr_merges");
}

TEST(MetricsRegistry, CounterReferencesStayValid)
{
    obs::MetricsRegistry reg;
    std::uint64_t &first = reg.counter("a");
    // Deque-backed entries: registering many more must not move "a".
    for (int i = 0; i < 1000; ++i)
        reg.counter("c" + std::to_string(i)) = i;
    first += 7;
    EXPECT_EQ(reg.counterValue("a"), 7u);
}

TEST(MetricsRegistry, JsonRoundTrip)
{
    obs::MetricsRegistry reg;
    reg.setCounter("core.instructions", 123456789);
    reg.setCounter("cache.l1i.misses", 42);
    reg.setGauge("sim.ipc", 1.7320508075688772);
    reg.setGauge("phase.simulate.seconds", 0.015625);
    Histogram &h = reg.histogram("core.dep_distance", 4, 8);
    h.sample(0, 10);
    h.sample(7, 5);
    h.sample(1000);

    std::string json = reg.toJson();
    JsonReader reader(json);
    ASSERT_TRUE(reader.parse()) << json;

    EXPECT_DOUBLE_EQ(reader.values["counters/core.instructions"],
                     123456789.0);
    EXPECT_DOUBLE_EQ(reader.values["counters/cache.l1i.misses"], 42.0);
    EXPECT_DOUBLE_EQ(reader.values["gauges/sim.ipc"], 1.7320508075688772);
    EXPECT_DOUBLE_EQ(reader.values["gauges/phase.simulate.seconds"],
                     0.015625);
    EXPECT_DOUBLE_EQ(reader.values["histograms/core.dep_distance/total"],
                     16.0);
    // The percentile summary exported next to the mean.
    EXPECT_DOUBLE_EQ(reader.values["histograms/core.dep_distance/p50"],
                     double(h.percentile(50)));
    EXPECT_DOUBLE_EQ(reader.values["histograms/core.dep_distance/p95"],
                     double(h.percentile(95)));
    EXPECT_DOUBLE_EQ(reader.values["histograms/core.dep_distance/p99"],
                     double(h.percentile(99)));
    EXPECT_DOUBLE_EQ(
        reader.values["histograms/core.dep_distance/buckets/0"], 10.0);
    EXPECT_DOUBLE_EQ(
        reader.values["histograms/core.dep_distance/buckets/1"], 5.0);
    // Overflow bucket.
    EXPECT_DOUBLE_EQ(
        reader.values["histograms/core.dep_distance/buckets/8"], 1.0);
}

TEST(MetricsRegistry, JsonEscapesNames)
{
    obs::MetricsRegistry reg;
    reg.setCounter("weird\"name\\with\nescapes", 1);
    std::string json = reg.toJson();
    JsonReader reader(json);
    ASSERT_TRUE(reader.parse()) << json;
}

TEST(MetricsRegistry, CsvRoundTrip)
{
    obs::MetricsRegistry reg;
    reg.setCounter("a.b", 77);
    reg.setGauge("c.d", 0.5);

    std::istringstream in(reg.toCsv());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "kind,path,value");
    std::map<std::string, std::string> parsed;
    while (std::getline(in, line)) {
        auto first = line.find(',');
        auto second = line.find(',', first + 1);
        ASSERT_NE(second, std::string::npos);
        parsed[line.substr(first + 1, second - first - 1)] =
            line.substr(second + 1);
    }
    EXPECT_EQ(parsed["a.b"], "77");
    EXPECT_DOUBLE_EQ(std::stod(parsed["c.d"]), 0.5);
}

TEST(MetricsRegistry, CsvFlattensHistogramPercentiles)
{
    obs::MetricsRegistry reg;
    Histogram &h = reg.histogram("lat", 2, 8);
    for (std::uint64_t v = 0; v < 16; ++v)
        h.sample(v);
    const std::string csv = reg.toCsv();
    EXPECT_NE(csv.find("histogram,lat.p50,"), std::string::npos);
    EXPECT_NE(csv.find("histogram,lat.p95,"), std::string::npos);
    EXPECT_NE(csv.find("histogram,lat.p99,"), std::string::npos);
}

TEST(Finish, SecondCallIsANoOp)
{
    obs::detail::resetFinishForTests();
    const std::string path =
        testing::TempDir() + "trb_finish_idempotence.json";
    setenv("TRB_OBS_JSON", path.c_str(), 1);
    obs::MetricsRegistry::global().setCounter("finish.test.marker", 1);

    EXPECT_TRUE(obs::finish());
    std::remove(path.c_str());
    // A layered teardown path calling finish() again must not re-export
    // or recreate the dump.
    EXPECT_FALSE(obs::finish());
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());

    unsetenv("TRB_OBS_JSON");
    obs::detail::resetFinishForTests();
}

TEST(PipelineTracer, RingBufferWrapsAround)
{
    obs::PipelineTracer tracer(8);
    EXPECT_EQ(tracer.capacity(), 8u);
    for (std::uint64_t i = 0; i < 20; ++i) {
        obs::InstrEvent ev;
        ev.seq = i;
        ev.retire = 100 + i;
        tracer.record(ev);
    }
    EXPECT_EQ(tracer.recorded(), 20u);
    EXPECT_EQ(tracer.size(), 8u);

    auto events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    // Oldest first: the ring holds the most recent 8 records.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, 12 + i);
        EXPECT_EQ(events[i].retire, 112 + i);
    }

    tracer.clear();
    EXPECT_EQ(tracer.size(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(PipelineTracer, BelowCapacityKeepsEverything)
{
    obs::PipelineTracer tracer(16);
    for (std::uint64_t i = 0; i < 5; ++i) {
        obs::InstrEvent ev;
        ev.seq = i;
        tracer.record(ev);
    }
    auto events = tracer.events();
    ASSERT_EQ(events.size(), 5u);
    EXPECT_EQ(events.front().seq, 0u);
    EXPECT_EQ(events.back().seq, 4u);
}

TEST(PipelineTracer, ChromeTraceIsValidJson)
{
    obs::PipelineTracer tracer(4);
    for (std::uint64_t i = 0; i < 6; ++i) {
        obs::InstrEvent ev;
        ev.seq = i;
        ev.ip = 0x400000 + 4 * i;
        ev.fetch = 10 * i;
        ev.dispatch = 10 * i + 2;
        ev.issue = 10 * i + 3;
        ev.complete = 10 * i + 4;
        ev.retire = 10 * i + 5;
        if (i == 3)
            ev.squash = obs::SquashCause::TargetMispredict;
        tracer.record(ev);
    }
    std::ostringstream os;
    tracer.writeChromeTrace(os);
    std::string json = os.str();
    JsonReader reader(json);
    EXPECT_TRUE(reader.parse()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("squash:target"), std::string::npos);
}

TEST(PipelineTracer, LaneViewFiltersPcRange)
{
    std::vector<obs::InstrEvent> events;
    for (std::uint64_t i = 0; i < 4; ++i) {
        obs::InstrEvent ev;
        ev.seq = i;
        ev.ip = 0x1000 + 0x10 * i;
        ev.fetch = i;
        ev.dispatch = i + 1;
        ev.issue = i + 2;
        ev.complete = i + 3;
        ev.retire = i + 4;
        events.push_back(ev);
    }
    std::string all = obs::renderLaneView(events);
    EXPECT_NE(all.find("0x00001000"), std::string::npos);
    EXPECT_NE(all.find("0x00001030"), std::string::npos);

    std::string some = obs::renderLaneView(events, 0x1010, 0x1020);
    EXPECT_EQ(some.find("0x00001000"), std::string::npos);
    EXPECT_NE(some.find("0x00001010"), std::string::npos);
    EXPECT_NE(some.find("0x00001020"), std::string::npos);
    EXPECT_EQ(some.find("0x00001030"), std::string::npos);

    std::string none = obs::renderLaneView(events, 0x9000, 0x9010);
    EXPECT_NE(none.find("no traced instructions"), std::string::npos);
}

TEST(Logging, ParseLogLevel)
{
    EXPECT_EQ(parseLogLevel("silent"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("warn"), LogLevel::Warn);
    EXPECT_EQ(parseLogLevel("info"), LogLevel::Info);
    EXPECT_EQ(parseLogLevel("debug"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel("trace"), LogLevel::Trace);
    EXPECT_EQ(parseLogLevel("0"), LogLevel::Silent);
    EXPECT_EQ(parseLogLevel("3"), LogLevel::Debug);
    EXPECT_EQ(parseLogLevel(nullptr), LogLevel::Info);
    EXPECT_EQ(parseLogLevel(""), LogLevel::Info);
}

/** RAII guard restoring the ambient log level after a test. */
struct LogLevelGuard
{
    LogLevel saved = logLevel();
    ~LogLevelGuard() { setLogLevel(saved); }
};

TEST(Logging, LevelFiltersWarnInformDebug)
{
    LogLevelGuard guard;

    setLogLevel(LogLevel::Silent);
    testing::internal::CaptureStderr();
    trb_warn("w1");
    trb_inform("i1");
    trb_debug("d1");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    testing::internal::CaptureStderr();
    trb_warn("w2");
    trb_inform("i2");
    trb_debug("d2");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "warn: w2\n");

    setLogLevel(LogLevel::Debug);
    testing::internal::CaptureStderr();
    trb_warn("w3");
    trb_inform("i3");
    trb_debug("d3");
    EXPECT_EQ(testing::internal::GetCapturedStderr(),
              "warn: w3\ninfo: i3\ndebug: d3\n");
}

TEST(PhaseProfile, AccumulatesAndExports)
{
    obs::PhaseProfile profile;
    profile.add("simulate", 0.5, 1000);
    profile.add("simulate", 0.25, 500);
    profile.add("convert", 0.25);

    ASSERT_EQ(profile.entries().size(), 2u);
    EXPECT_DOUBLE_EQ(profile.seconds("simulate"), 0.75);
    EXPECT_EQ(profile.entries()[0].calls, 2u);
    EXPECT_EQ(profile.entries()[0].items, 1500u);
    EXPECT_DOUBLE_EQ(profile.entries()[0].itemsPerSecond(), 2000.0);

    std::string report = profile.report();
    EXPECT_NE(report.find("simulate"), std::string::npos);
    EXPECT_NE(report.find("convert"), std::string::npos);

    obs::MetricsRegistry reg;
    profile.exportTo(reg, "phase");
    EXPECT_DOUBLE_EQ(reg.gaugeValue("phase.simulate.seconds"), 0.75);
    EXPECT_EQ(reg.counterValue("phase.simulate.calls"), 2u);
    EXPECT_EQ(reg.counterValue("phase.simulate.items"), 1500u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("phase.convert.seconds"), 0.25);
}

TEST(ScopeTimer, RecordsElapsedTime)
{
    obs::PhaseProfile profile;
    {
        obs::ScopeTimer timer(profile, "work");
        timer.setItems(10);
        // Burn a little wall time so elapsed() is strictly positive.
        volatile double sink = 0;
        for (int i = 0; i < 100000; ++i)
            sink = sink + 1.0;
        EXPECT_GT(timer.elapsed(), 0.0);
    }
    ASSERT_EQ(profile.entries().size(), 1u);
    EXPECT_GT(profile.seconds("work"), 0.0);
    EXPECT_EQ(profile.entries()[0].items, 10u);
}

TEST(Histogram, PercentileNearestRank)
{
    Histogram h(10, 10);
    for (std::uint64_t v = 0; v < 100; ++v)
        h.sample(v);
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(10), 0u);     // 10th sample is in bucket 0
    EXPECT_EQ(h.percentile(50), 40u);    // 50th sample = value 49
    EXPECT_EQ(h.percentile(100), 90u);
    EXPECT_EQ(Histogram(1, 4).percentile(50), 0u);   // empty
}

TEST(Histogram, ReportListsBucketsAndSummary)
{
    Histogram h(5, 4);
    h.sample(1, 8);
    h.sample(12, 2);
    std::string report = h.report("  ");
    EXPECT_NE(report.find("[0, 5) 8"), std::string::npos);
    EXPECT_NE(report.find("[10, 15) 2"), std::string::npos);
    EXPECT_NE(report.find("total 10"), std::string::npos);
    EXPECT_EQ(report.find("[5, 10)"), std::string::npos);
}

} // namespace
} // namespace trb
