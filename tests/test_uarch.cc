/**
 * @file
 * Tests for the microarchitectural substrate: direction predictors learn
 * the patterns they are built for, ITTAGE resolves history-correlated
 * indirect targets, and the BTB/RAS obey their structural contracts.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/rng.hh"
#include "uarch/btb.hh"
#include "uarch/direction_pred.hh"
#include "uarch/ittage.hh"
#include "uarch/tage.hh"

namespace trb
{
namespace
{

/** Run a predictor on an outcome generator; return accuracy. */
double
accuracy(DirectionPredictor &pred, Addr pc,
         const std::function<bool(int)> &outcome, int warmup, int measure)
{
    int correct = 0;
    for (int i = 0; i < warmup + measure; ++i) {
        bool taken = outcome(i);
        bool p = pred.predict(pc);
        if (i >= warmup && p == taken)
            ++correct;
        pred.update(pc, taken);
    }
    return static_cast<double>(correct) / measure;
}

TEST(Bimodal, LearnsBias)
{
    BimodalPredictor pred;
    double acc = accuracy(pred, 0x1000, [](int) { return true; }, 10, 1000);
    EXPECT_GT(acc, 0.99);
    BimodalPredictor pred2;
    acc = accuracy(pred2, 0x1000, [](int i) { return i % 10 != 0; }, 100,
                   1000);
    EXPECT_GT(acc, 0.85);
}

TEST(Bimodal, CannotLearnAlternation)
{
    BimodalPredictor pred;
    double acc =
        accuracy(pred, 0x1000, [](int i) { return i % 2 == 0; }, 100, 1000);
    EXPECT_LT(acc, 0.7);
}

TEST(Gshare, LearnsAlternation)
{
    GsharePredictor pred;
    double acc =
        accuracy(pred, 0x1000, [](int i) { return i % 2 == 0; }, 200, 1000);
    EXPECT_GT(acc, 0.95);
}

TEST(Gshare, LearnsShortPeriod)
{
    GsharePredictor pred;
    double acc =
        accuracy(pred, 0x1000, [](int i) { return i % 5 != 0; }, 500, 1000);
    EXPECT_GT(acc, 0.95);
}

class TagePatterns : public ::testing::TestWithParam<int>
{};

TEST_P(TagePatterns, LearnsPeriodicPattern)
{
    int period = GetParam();
    TageScL pred;
    double acc = accuracy(
        pred, 0x4000, [period](int i) { return i % period != 0; }, 3000,
        3000);
    EXPECT_GT(acc, 0.95) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(Periods, TagePatterns,
                         ::testing::Values(2, 3, 7, 16, 40));

TEST(Tage, NearPerfectOnBias)
{
    TageScL pred;
    double acc =
        accuracy(pred, 0x4000, [](int) { return false; }, 100, 2000);
    EXPECT_GT(acc, 0.99);
}

TEST(Tage, RandomIsHard)
{
    TageScL pred;
    Rng rng(5);
    double acc = accuracy(
        pred, 0x4000, [&rng](int) { return rng.chance(0.5); }, 2000, 4000);
    EXPECT_GT(acc, 0.40);
    EXPECT_LT(acc, 0.62);
}

TEST(Tage, ManyBranchesIndependently)
{
    // Interleave 64 branches with distinct biases; TAGE keeps them apart.
    TageScL pred;
    int correct = 0, total = 0;
    for (int round = 0; round < 400; ++round) {
        for (int b = 0; b < 64; ++b) {
            Addr pc = 0x10000 + 4u * static_cast<Addr>(b);
            bool taken = (b % 3) != 0;
            bool p = pred.predict(pc);
            if (round > 100) {
                ++total;
                correct += p == taken;
            }
            pred.update(pc, taken);
        }
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST(Tage, HistoryCorrelation)
{
    // Branch B's outcome equals branch A's previous outcome: only a
    // history-based predictor gets this right.
    TageScL pred;
    Rng rng(7);
    bool last_a = false;
    int correct = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        bool a = rng.chance(0.5);
        (void)pred.predict(0x1000);
        pred.update(0x1000, a);

        bool b = last_a;
        bool p = pred.predict(0x2000);
        if (i > 2000) {
            ++total;
            correct += p == b;
        }
        pred.update(0x2000, b);
        last_a = a;
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Ittage, MonomorphicTarget)
{
    Ittage pred;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        Addr p = pred.predict(0x5000);
        if (i > 10)
            correct += p == 0x9000;
        pred.update(0x5000, 0x9000);
    }
    EXPECT_GT(correct, 180);
}

TEST(Ittage, HistoryCorrelatedPolymorphic)
{
    // The indirect target alternates deterministically: history-indexed
    // tagged tables must catch it.
    Ittage pred;
    int correct = 0, total = 0;
    for (int i = 0; i < 4000; ++i) {
        Addr target = (i % 2) ? 0x9000 : 0xa000;
        Addr p = pred.predict(0x5000);
        if (i > 2000) {
            ++total;
            correct += p == target;
        }
        pred.update(0x5000, target);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(Ittage, ConditionalHistoryDisambiguates)
{
    // A conditional's direction (pushed into the history) decides the
    // upcoming indirect target -- the ITTAGE killer feature.
    Ittage pred;
    Rng rng(11);
    int correct = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        bool cond = rng.chance(0.5);
        pred.pushHistoryBit(cond);
        Addr target = cond ? 0x9000 : 0xa000;
        Addr p = pred.predict(0x5000);
        if (i > 3000) {
            ++total;
            correct += p == target;
        }
        pred.update(0x5000, target);
    }
    EXPECT_GT(static_cast<double>(correct) / total, 0.85);
}

TEST(Btb, HitAfterUpdate)
{
    Btb btb(1024, 4);
    EXPECT_FALSE(btb.lookup(0x1000).hit);
    btb.update(0x1000, 0x2000, BranchType::DirectJump);
    auto view = btb.lookup(0x1000);
    EXPECT_TRUE(view.hit);
    EXPECT_EQ(view.target, 0x2000u);
    EXPECT_EQ(view.type, BranchType::DirectJump);
}

TEST(Btb, UpdateRefreshesExisting)
{
    Btb btb(1024, 4);
    btb.update(0x1000, 0x2000, BranchType::DirectJump);
    btb.update(0x1000, 0x3000, BranchType::IndirectJump);
    auto view = btb.lookup(0x1000);
    EXPECT_EQ(view.target, 0x3000u);
    EXPECT_EQ(view.type, BranchType::IndirectJump);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(64, 4);   // 16 sets
    // Five PCs mapping to the same set: stride = sets * 4.
    Addr stride = 16 * 4;
    for (int i = 0; i < 5; ++i)
        btb.update(0x1000 + i * stride, 0x9000 + i, BranchType::DirectJump);
    // The first (least recent) mapping is gone, later ones survive.
    EXPECT_FALSE(btb.lookup(0x1000).hit);
    int present = 0;
    for (int i = 1; i < 5; ++i)
        present += btb.lookup(0x1000 + i * stride).hit;
    EXPECT_EQ(present, 4);
}

TEST(Btb, CapacityHoldsWorkingSet)
{
    Btb btb(16384, 8);
    for (Addr pc = 0; pc < 8000 * 4; pc += 4)
        btb.update(0x100000 + pc, pc, BranchType::Conditional);
    int hits = 0;
    for (Addr pc = 0; pc < 8000 * 4; pc += 4)
        hits += btb.lookup(0x100000 + pc).hit;
    EXPECT_EQ(hits, 8000);
}

TEST(Ras, LifoOrder)
{
    Ras ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.depth(), 3u);
    EXPECT_EQ(ras.top(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.depth(), 0u);
}

TEST(Ras, EmptyPopReturnsZero)
{
    Ras ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.top(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    Ras ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Capacity 4: the newest four survive, oldest two are overwritten.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, DeepCallChains)
{
    Ras ras(64);
    for (int rep = 0; rep < 100; ++rep) {
        for (Addr d = 0; d < 40; ++d)
            ras.push(0x1000 + d);
        for (Addr d = 40; d-- > 0;)
            ASSERT_EQ(ras.pop(), 0x1000 + d);
    }
}

} // namespace
} // namespace trb
