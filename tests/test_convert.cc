/**
 * @file
 * Tests for the cvp2champsim converter: the original converter's studied
 * defects, each of the six improvements' contracts, the addressing-mode
 * inference heuristic, and whole-trace properties over synthetic suites.
 */

#include <gtest/gtest.h>

#include <set>

#include "convert/cvp2champsim.hh"
#include "synth/generator.hh"
#include "synth/suites.hh"
#include "trace/branch_deduce.hh"

namespace trb
{
namespace
{

// ---------------------------------------------------------------------
// Record factories matching the paper's running examples.

/** LDR X1, [X0, #12]! -- pre-index: X0 := X0+12, X1 := mem[X0+12]. */
CvpRecord
ldrPreIndex(Addr pc = 0x1000, Addr base = 0x8000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = base + 12;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(0, base + 12);       // new base == EA, listed first
    rec.addDst(1, 0xdeadbeef);      // loaded data
    return rec;
}

/** LDR X1, [X0], #16 -- post-index: X1 := mem[X0], X0 := X0+16. */
CvpRecord
ldrPostIndex(Addr pc = 0x1000, Addr base = 0x8000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = base;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(0, base + 16);       // new base == EA + imm, listed first
    rec.addDst(1, 0xdeadbeef);
    return rec;
}

/** LDP X1, X2, [X0] -- load pair, no writeback. */
CvpRecord
ldpNoWb(Addr pc = 0x1000, Addr base = 0x8000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = base;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(1, 0x1111);
    rec.addDst(2, 0x2222);
    return rec;
}

/** PRFM [X0] -- prefetch load, no destination register. */
CvpRecord
prefetchLoad(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Load;
    rec.ea = 0x9000;
    rec.accessSize = 8;
    rec.addSrc(0);
    return rec;
}

/** Plain STR X2, [X0] -- no destination register. */
CvpRecord
plainStore(Addr pc = 0x1000, Addr ea = 0x9100)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Store;
    rec.ea = ea;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addSrc(2);
    return rec;
}

/** CMP X1, X2 -- ALU with no destination (sets flags). */
CvpRecord
cmpRecord(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::Alu;
    rec.addSrc(1);
    rec.addSrc(2);
    return rec;
}

/** CBZ X5, target -- conditional with a GPR source. */
CvpRecord
cbzRecord(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::CondBranch;
    rec.taken = true;
    rec.target = 0x2000;
    rec.addSrc(5);
    return rec;
}

/** B.EQ target -- conditional with no recorded sources. */
CvpRecord
bcondRecord(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::CondBranch;
    rec.taken = false;
    rec.target = 0x2000;
    return rec;
}

/** BLR X30 -- indirect call through the link register. */
CvpRecord
blrX30(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::UncondIndirectBranch;
    rec.taken = true;
    rec.target = 0x3000;
    rec.addSrc(aarch64::kLinkReg);
    rec.addDst(aarch64::kLinkReg, pc + 4);
    return rec;
}

/** RET -- reads X30, writes nothing. */
CvpRecord
retRecord(Addr pc = 0x1000)
{
    CvpRecord rec;
    rec.pc = pc;
    rec.cls = InstClass::UncondIndirectBranch;
    rec.taken = true;
    rec.target = 0x4000;
    rec.addSrc(aarch64::kLinkReg);
    return rec;
}

ChampSimTrace
convertOneWith(ImprovementSet imps, const CvpRecord &rec)
{
    Cvp2ChampSim conv(imps);
    ChampSimTrace out;
    conv.convertOne(rec, out);
    return out;
}

// ---------------------------------------------------------------------

TEST(MapReg, AvoidsSpecialRegistersAndZero)
{
    std::set<RegId> seen;
    for (unsigned r = 0; r < aarch64::kNumRegs; ++r) {
        RegId m = Cvp2ChampSim::mapReg(static_cast<RegId>(r));
        EXPECT_NE(m, 0);
        EXPECT_NE(m, champsim::kStackPointer);
        EXPECT_NE(m, champsim::kFlags);
        EXPECT_NE(m, champsim::kInstructionPointer);
        EXPECT_NE(m, champsim::kOtherReg);
        EXPECT_TRUE(seen.insert(m).second) << "collision at " << r;
    }
}

TEST(InferBaseUpdate, PreIndexDetected)
{
    auto info = Cvp2ChampSim::inferBaseUpdate(ldrPreIndex());
    EXPECT_EQ(info.kind, BaseUpdateKind::Pre);
    EXPECT_EQ(info.baseReg, 0);
    EXPECT_EQ(info.dstIndex, 0u);
}

TEST(InferBaseUpdate, PostIndexDetected)
{
    auto info = Cvp2ChampSim::inferBaseUpdate(ldrPostIndex());
    EXPECT_EQ(info.kind, BaseUpdateKind::Post);
    EXPECT_EQ(info.baseReg, 0);
}

TEST(InferBaseUpdate, LoadPairIsNotWriteback)
{
    // LDP X1, X0, [X0]: X0 is src and dst but receives far-away data.
    CvpRecord rec;
    rec.cls = InstClass::Load;
    rec.ea = 0x8000;
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(1, 0xdeadbeefcafeULL);
    rec.addDst(0, 0x123456789abcULL);   // loaded value, far from EA
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(rec).kind,
              BaseUpdateKind::None);
}

TEST(InferBaseUpdate, PointerChaseUsuallyRejected)
{
    CvpRecord rec;
    rec.cls = InstClass::Load;
    rec.ea = 0x10000;
    rec.accessSize = 8;
    rec.addSrc(8);
    rec.addDst(8, 0x90000);   // next pointer far away
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(rec).kind,
              BaseUpdateKind::None);
}

TEST(InferBaseUpdate, NoCandidateNoUpdate)
{
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(prefetchLoad()).kind,
              BaseUpdateKind::None);
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(ldpNoWb()).kind,
              BaseUpdateKind::None);
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(cmpRecord()).kind,
              BaseUpdateKind::None);
}

TEST(InferBaseUpdate, StoreWritebackDetected)
{
    // STR X2, [X0, #-16]!
    CvpRecord rec;
    rec.cls = InstClass::Store;
    rec.ea = 0x8000 - 16;
    rec.accessSize = 8;
    rec.addSrc(2);
    rec.addSrc(0);
    rec.addDst(0, 0x8000 - 16);
    EXPECT_EQ(Cvp2ChampSim::inferBaseUpdate(rec).kind, BaseUpdateKind::Pre);
}

// ---------------------------------------------------------------------
// Original converter defects.

TEST(OriginalConverter, KeepsOnlyFirstDestination)
{
    // The original converter keeps only the first CVP-1 destination.
    // For a writeback load that is the base register, so the base stays
    // pinned to memory latency in the unimproved traces (the defect the
    // base-update improvement exists to fix; DESIGN.md discusses the
    // ordering evidence).
    auto out = convertOneWith(kImpNone, ldrPreIndex());
    ASSERT_EQ(out.size(), 1u);
    const ChampSimRecord &cs = out[0];
    EXPECT_TRUE(cs.readsReg(Cvp2ChampSim::mapReg(0)));
    EXPECT_TRUE(cs.writesReg(Cvp2ChampSim::mapReg(0)));
    EXPECT_FALSE(cs.writesReg(Cvp2ChampSim::mapReg(1)));   // data dropped
    EXPECT_EQ(cs.numSrcMem(), 1u);
    EXPECT_EQ(cs.srcMem[0], ldrPreIndex().ea);

    Cvp2ChampSim conv(kImpNone);
    ChampSimTrace two;
    conv.convertOne(ldpNoWb(), two);
    EXPECT_EQ(conv.stats().droppedDstRegs, 1u);
}

TEST(OriginalConverter, InsertsX0IntoDestinationLessMem)
{
    for (const CvpRecord &rec : {prefetchLoad(), plainStore()}) {
        auto out = convertOneWith(kImpNone, rec);
        ASSERT_EQ(out.size(), 1u);
        EXPECT_TRUE(out[0].writesReg(Cvp2ChampSim::mapReg(0)))
            << instClassName(rec.cls);
    }
    Cvp2ChampSim conv(kImpNone);
    ChampSimTrace out;
    conv.convertOne(prefetchLoad(), out);
    conv.convertOne(plainStore(), out);
    EXPECT_EQ(conv.stats().x0InsertedMem, 2u);
}

TEST(OriginalConverter, MisclassifiesBlrX30AsReturn)
{
    auto out = convertOneWith(kImpNone, blrX30());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Original),
              BranchType::Return);
}

TEST(OriginalConverter, DropsBranchSources)
{
    auto out = convertOneWith(kImpNone, cbzRecord());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].readsReg(Cvp2ChampSim::mapReg(5)));
    EXPECT_TRUE(out[0].readsReg(champsim::kFlags));
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Original),
              BranchType::Conditional);
}

TEST(OriginalConverter, NothingWritesFlags)
{
    auto out = convertOneWith(kImpNone, cmpRecord());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].writesReg(champsim::kFlags));
    EXPECT_EQ(out[0].destRegs[0], 0);   // no destination at all
}

TEST(OriginalConverter, OneToOneRecordCount)
{
    TraceGenerator gen(computeIntParams(3));
    CvpTrace in = gen.generate(20000);
    Cvp2ChampSim conv(kImpNone);
    ChampSimTrace out = conv.convert(in);
    EXPECT_EQ(out.size(), in.size());
    EXPECT_EQ(conv.stats().cvpInstructions, in.size());
    EXPECT_EQ(conv.stats().champsimInstructions, out.size());
}

// ---------------------------------------------------------------------
// Improvement contracts.

TEST(ImpMemRegs, KeepsAllDestinationsDropsX0)
{
    auto pair = convertOneWith(kImpMemRegs, ldpNoWb());
    ASSERT_EQ(pair.size(), 1u);
    EXPECT_TRUE(pair[0].writesReg(Cvp2ChampSim::mapReg(1)));
    EXPECT_TRUE(pair[0].writesReg(Cvp2ChampSim::mapReg(2)));
    // Destinations no longer leak into sources.
    EXPECT_FALSE(pair[0].readsReg(Cvp2ChampSim::mapReg(1)));

    auto pf = convertOneWith(kImpMemRegs, prefetchLoad());
    EXPECT_EQ(pf[0].destRegs[0], 0);
    auto st = convertOneWith(kImpMemRegs, plainStore());
    EXPECT_EQ(st[0].destRegs[0], 0);
}

TEST(ImpMemRegs, PreIndexKeepsBothDestinations)
{
    // Without base-update splitting, both X0 and X1 are destinations --
    // and both resolve at memory latency (the studied inaccuracy).
    auto out = convertOneWith(kImpMemRegs, ldrPreIndex());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].writesReg(Cvp2ChampSim::mapReg(0)));
    EXPECT_TRUE(out[0].writesReg(Cvp2ChampSim::mapReg(1)));
}

TEST(ImpBaseUpdate, PreIndexSplitsAluFirst)
{
    auto out = convertOneWith(kImpBaseUpdate | kImpMemRegs, ldrPreIndex());
    ASSERT_EQ(out.size(), 2u);
    const ChampSimRecord &alu = out[0];
    const ChampSimRecord &mem = out[1];
    EXPECT_EQ(alu.ip, 0x1000u);
    EXPECT_EQ(mem.ip, 0x1002u);
    EXPECT_FALSE(alu.isLoad());
    EXPECT_TRUE(alu.readsReg(Cvp2ChampSim::mapReg(0)));
    EXPECT_TRUE(alu.writesReg(Cvp2ChampSim::mapReg(0)));
    EXPECT_TRUE(mem.isLoad());
    EXPECT_TRUE(mem.writesReg(Cvp2ChampSim::mapReg(1)));
    EXPECT_FALSE(mem.writesReg(Cvp2ChampSim::mapReg(0)));
}

TEST(ImpBaseUpdate, PostIndexSplitsMemFirst)
{
    auto out = convertOneWith(kImpBaseUpdate | kImpMemRegs, ldrPostIndex());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].isLoad());
    EXPECT_EQ(out[0].ip, 0x1000u);
    EXPECT_EQ(out[1].ip, 0x1002u);
    EXPECT_TRUE(out[1].writesReg(Cvp2ChampSim::mapReg(0)));
}

TEST(ImpBaseUpdate, NoSplitWithoutWriteback)
{
    EXPECT_EQ(convertOneWith(kImpBaseUpdate, ldpNoWb()).size(), 1u);
    EXPECT_EQ(convertOneWith(kImpBaseUpdate, prefetchLoad()).size(), 1u);
}

TEST(ImpMemFootprint, LineCrossingGetsSecondAddress)
{
    CvpRecord rec;
    rec.cls = InstClass::Load;
    rec.ea = 0x8000 + 60;   // 8 bytes spanning 0x8000 and 0x8040 lines
    rec.accessSize = 8;
    rec.addSrc(0);
    rec.addDst(1, 0);
    auto out = convertOneWith(kImpMemFootprint, rec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].numSrcMem(), 2u);
    EXPECT_EQ(out[0].srcMem[1], 0x8040u);

    rec.ea = 0x8000;        // aligned: one line only
    auto aligned = convertOneWith(kImpMemFootprint, rec);
    EXPECT_EQ(aligned[0].numSrcMem(), 1u);
}

TEST(ImpMemFootprint, PairTransferSizeCounted)
{
    // LDP at line+56: 16 bytes span two lines even though each register
    // is 8-byte aligned within its half.
    CvpRecord rec = ldpNoWb(0x1000, 0x8000 + 56);
    auto out = convertOneWith(kImpMemFootprint, rec);
    EXPECT_EQ(out[0].numSrcMem(), 2u);

    // Without the improvement only one address is conveyed.
    auto plain = convertOneWith(kImpNone, rec);
    EXPECT_EQ(plain[0].numSrcMem(), 1u);
}

TEST(ImpMemFootprint, WritebackRegExcludedFromTransferSize)
{
    // Pre-index LDR at line+60 transfers only 8 bytes (X1): the X0
    // "destination" is the writeback, not memory data.
    CvpRecord rec = ldrPreIndex(0x1000, 0x8000 + 48);   // ea = +60
    ASSERT_EQ(rec.ea % kLineBytes, 60u);
    auto out = convertOneWith(kImpMemFootprint, rec);
    // 8 bytes at +60 still crosses; but a naive size of 16 would also
    // cross at +52.  Verify the register count logic via a non-crossing
    // placement instead: EA at +48 with two dsts, one of them writeback.
    CvpRecord mid = ldrPreIndex(0x1000, 0x8000 + 36);   // ea = +48
    ASSERT_EQ(mid.ea % kLineBytes, 48u);
    auto out2 = convertOneWith(kImpMemFootprint, mid);
    // 8 bytes at +48 does not cross; 16 would.  Writeback excluded: one
    // address.
    EXPECT_EQ(out2[0].numSrcMem(), 1u);
    EXPECT_EQ(out[0].numSrcMem(), 2u);
}

TEST(ImpMemFootprint, ZvaAligned)
{
    CvpRecord rec;
    rec.cls = InstClass::Store;
    rec.ea = 0x8020;        // architecturally legal unaligned DC ZVA
    rec.accessSize = 64;
    rec.addSrc(0);
    auto out = convertOneWith(kImpMemFootprint, rec);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].destMem[0], 0x8000u);
    EXPECT_EQ(out[0].numDstMem(), 1u);   // one line by definition
}

TEST(ImpCallStack, BlrX30IsIndirectCall)
{
    auto out = convertOneWith(kImpCallStack, blrX30());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Original),
              BranchType::IndirectCall);
    // Real returns still classify as returns.
    auto ret = convertOneWith(kImpCallStack, retRecord());
    EXPECT_EQ(deduceBranchType(ret[0], DeductionRules::Original),
              BranchType::Return);
}

TEST(ImpBranchRegs, ConditionalKeepsGprSource)
{
    auto out = convertOneWith(kImpBranchRegs, cbzRecord());
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].readsReg(Cvp2ChampSim::mapReg(5)));
    EXPECT_FALSE(out[0].readsReg(champsim::kFlags));
    // The documented deduction conflict: original rules call this an
    // indirect jump; the patched rules keep it conditional.
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Original),
              BranchType::IndirectJump);
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Patched),
              BranchType::Conditional);
}

TEST(ImpBranchRegs, FlagConditionalStillReadsFlags)
{
    auto out = convertOneWith(kImpBranchRegs, bcondRecord());
    EXPECT_TRUE(out[0].readsReg(champsim::kFlags));
    EXPECT_EQ(deduceBranchType(out[0], DeductionRules::Patched),
              BranchType::Conditional);
}

TEST(ImpBranchRegs, IndirectBranchesCarryRealSources)
{
    CvpRecord br;
    br.cls = InstClass::UncondIndirectBranch;
    br.pc = 0x1000;
    br.taken = true;
    br.target = 0x2000;
    br.addSrc(9);

    auto orig = convertOneWith(kImpNone, br);
    EXPECT_TRUE(orig[0].readsReg(champsim::kOtherReg));
    EXPECT_FALSE(orig[0].readsReg(Cvp2ChampSim::mapReg(9)));

    auto imp = convertOneWith(kImpBranchRegs, br);
    EXPECT_FALSE(imp[0].readsReg(champsim::kOtherReg));
    EXPECT_TRUE(imp[0].readsReg(Cvp2ChampSim::mapReg(9)));
    EXPECT_EQ(deduceBranchType(imp[0], DeductionRules::Patched),
              BranchType::IndirectJump);
}

TEST(ImpFlagReg, CompareWritesFlags)
{
    auto out = convertOneWith(kImpFlagReg, cmpRecord());
    EXPECT_TRUE(out[0].writesReg(champsim::kFlags));

    // FP compares too.
    CvpRecord fcmp;
    fcmp.cls = InstClass::Fp;
    fcmp.addSrc(33);
    fcmp.addSrc(34);
    auto fp = convertOneWith(kImpFlagReg, fcmp);
    EXPECT_TRUE(fp[0].writesReg(champsim::kFlags));

    // Instructions with a destination are untouched.
    CvpRecord add;
    add.cls = InstClass::Alu;
    add.addSrc(1);
    add.addDst(2, 7);
    auto a = convertOneWith(kImpFlagReg, add);
    EXPECT_FALSE(a[0].writesReg(champsim::kFlags));
}

TEST(ImpFlagReg, RestoresCmpToBranchDependency)
{
    // CMP ; B.EQ -- with flag-reg the branch's flag source has a
    // producer.
    Cvp2ChampSim conv(kImpFlagReg);
    ChampSimTrace out;
    conv.convertOne(cmpRecord(0x1000), out);
    conv.convertOne(bcondRecord(0x1004), out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_TRUE(out[0].writesReg(champsim::kFlags));
    EXPECT_TRUE(out[1].readsReg(champsim::kFlags));
}

// ---------------------------------------------------------------------
// Whole-trace properties.

class SuiteConversion : public ::testing::TestWithParam<ImprovementSet>
{};

TEST_P(SuiteConversion, WellFormedUnderAllRuleSets)
{
    ImprovementSet imps = GetParam();
    DeductionRules rules = (imps & kImpBranchRegs)
                               ? DeductionRules::Patched
                               : DeductionRules::Original;
    TraceGenerator gen(serverParams(91));
    CvpTrace in = gen.generate(30000);
    Cvp2ChampSim conv(imps);
    ChampSimTrace out = conv.convert(in);
    ASSERT_GE(out.size(), in.size());

    std::uint64_t branches = 0;
    for (const ChampSimRecord &cs : out) {
        if (cs.isBranch) {
            ++branches;
            BranchType t = deduceBranchType(cs, rules);
            EXPECT_NE(t, BranchType::NotBranch);
        } else {
            // Non-branches must never write the instruction pointer.
            EXPECT_FALSE(cs.writesReg(champsim::kInstructionPointer));
        }
        // The X56 "reads other" marker is a branch-typing device only.
        if (!cs.isBranch) {
            EXPECT_FALSE(cs.readsReg(champsim::kOtherReg));
        }
    }
    EXPECT_GT(branches, 1000u);
}

INSTANTIATE_TEST_SUITE_P(
    Sets, SuiteConversion,
    ::testing::Values(kImpNone, kImpMemRegs, kImpBaseUpdate,
                      kImpMemFootprint, kImpCallStack, kImpBranchRegs,
                      kImpFlagReg, kMemoryImps, kBranchImps, kAllImps,
                      kIpc1Imps));

TEST(Conversion, DeterministicAndCountsConsistent)
{
    TraceGenerator gen(computeFpParams(93));
    CvpTrace in = gen.generate(20000);
    Cvp2ChampSim a(kAllImps), b(kAllImps);
    ChampSimTrace out1 = a.convert(in);
    ChampSimTrace out2 = b.convert(in);
    ASSERT_EQ(out1.size(), out2.size());
    for (std::size_t i = 0; i < out1.size(); ++i)
        ASSERT_TRUE(out1[i] == out2[i]);
    EXPECT_EQ(a.stats().champsimInstructions, out1.size());
    EXPECT_EQ(a.stats().splitMicroOps,
              a.stats().baseUpdatePre + a.stats().baseUpdatePost);
    EXPECT_EQ(out1.size(), in.size() + a.stats().splitMicroOps);
}

TEST(Conversion, BaseUpdateSplitsHappenOnSyntheticTraces)
{
    WorkloadParams p = computeIntParams(95);
    p.baseUpdateFrac = 0.4;
    CvpTrace in = TraceGenerator(p).generate(30000);
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace out = conv.convert(in);
    EXPECT_GT(conv.stats().baseUpdatePre, 200u);
    EXPECT_GT(conv.stats().baseUpdatePost, 200u);
    EXPECT_GT(out.size(), in.size());
}

TEST(Conversion, CallStackFixOnlyAffectsBlrX30Traces)
{
    WorkloadParams p = serverParams(97);
    p.blrX30Frac = 0.8;
    p.indirectCallFrac = 0.4;
    CvpTrace in = TraceGenerator(p).generate(30000);

    Cvp2ChampSim broken(kImpNone);
    ChampSimTrace bad = broken.convert(in);
    Cvp2ChampSim fixed(kImpCallStack);
    ChampSimTrace good = fixed.convert(in);

    EXPECT_GT(broken.stats().callsMisclassified, 50u);
    EXPECT_EQ(fixed.stats().callsMisclassified, 0u);
    EXPECT_GT(fixed.stats().callsReclassified, 50u);

    // Count deduced returns: the broken trace has spurious ones.
    auto count_returns = [](const ChampSimTrace &t) {
        std::uint64_t n = 0;
        for (const auto &cs : t)
            if (cs.isBranch && deduceBranchType(
                                   cs, DeductionRules::Original) ==
                                   BranchType::Return)
                ++n;
        return n;
    };
    EXPECT_GT(count_returns(bad), count_returns(good));
}

TEST(ImprovementNames, ParseRoundTrip)
{
    for (const char *name :
         {"No_imp", "All_imps", "Memory_imps", "Branch_imps", "IPC1_imps",
          "imp_mem-regs", "imp_base-update", "imp_mem-footprint",
          "imp_call-stack", "imp_branch-regs", "imp_flag-regs"}) {
        ImprovementSet set = 0;
        ASSERT_TRUE(parseImprovementSet(name, set)) << name;
        EXPECT_EQ(improvementSetName(set), name);
    }
    ImprovementSet set = 0;
    EXPECT_FALSE(parseImprovementSet("bogus", set));
}

} // namespace
} // namespace trb
