# Empty compiler generated dependencies file for trb_synth.
# This may be replaced when dependencies are built.
