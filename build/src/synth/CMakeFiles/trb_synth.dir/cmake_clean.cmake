file(REMOVE_RECURSE
  "CMakeFiles/trb_synth.dir/generator.cc.o"
  "CMakeFiles/trb_synth.dir/generator.cc.o.d"
  "CMakeFiles/trb_synth.dir/params.cc.o"
  "CMakeFiles/trb_synth.dir/params.cc.o.d"
  "CMakeFiles/trb_synth.dir/program.cc.o"
  "CMakeFiles/trb_synth.dir/program.cc.o.d"
  "CMakeFiles/trb_synth.dir/suites.cc.o"
  "CMakeFiles/trb_synth.dir/suites.cc.o.d"
  "libtrb_synth.a"
  "libtrb_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
