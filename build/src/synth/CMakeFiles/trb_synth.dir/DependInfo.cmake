
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generator.cc" "src/synth/CMakeFiles/trb_synth.dir/generator.cc.o" "gcc" "src/synth/CMakeFiles/trb_synth.dir/generator.cc.o.d"
  "/root/repo/src/synth/params.cc" "src/synth/CMakeFiles/trb_synth.dir/params.cc.o" "gcc" "src/synth/CMakeFiles/trb_synth.dir/params.cc.o.d"
  "/root/repo/src/synth/program.cc" "src/synth/CMakeFiles/trb_synth.dir/program.cc.o" "gcc" "src/synth/CMakeFiles/trb_synth.dir/program.cc.o.d"
  "/root/repo/src/synth/suites.cc" "src/synth/CMakeFiles/trb_synth.dir/suites.cc.o" "gcc" "src/synth/CMakeFiles/trb_synth.dir/suites.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
