file(REMOVE_RECURSE
  "libtrb_synth.a"
)
