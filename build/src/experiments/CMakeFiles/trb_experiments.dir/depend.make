# Empty dependencies file for trb_experiments.
# This may be replaced when dependencies are built.
