file(REMOVE_RECURSE
  "libtrb_experiments.a"
)
