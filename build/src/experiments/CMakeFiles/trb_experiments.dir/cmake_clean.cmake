file(REMOVE_RECURSE
  "CMakeFiles/trb_experiments.dir/experiment.cc.o"
  "CMakeFiles/trb_experiments.dir/experiment.cc.o.d"
  "libtrb_experiments.a"
  "libtrb_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
