file(REMOVE_RECURSE
  "libtrb_uarch.a"
)
