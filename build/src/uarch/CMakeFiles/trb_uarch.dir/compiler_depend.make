# Empty compiler generated dependencies file for trb_uarch.
# This may be replaced when dependencies are built.
