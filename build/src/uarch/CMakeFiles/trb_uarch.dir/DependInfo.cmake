
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uarch/btb.cc" "src/uarch/CMakeFiles/trb_uarch.dir/btb.cc.o" "gcc" "src/uarch/CMakeFiles/trb_uarch.dir/btb.cc.o.d"
  "/root/repo/src/uarch/ittage.cc" "src/uarch/CMakeFiles/trb_uarch.dir/ittage.cc.o" "gcc" "src/uarch/CMakeFiles/trb_uarch.dir/ittage.cc.o.d"
  "/root/repo/src/uarch/tage.cc" "src/uarch/CMakeFiles/trb_uarch.dir/tage.cc.o" "gcc" "src/uarch/CMakeFiles/trb_uarch.dir/tage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
