file(REMOVE_RECURSE
  "CMakeFiles/trb_uarch.dir/btb.cc.o"
  "CMakeFiles/trb_uarch.dir/btb.cc.o.d"
  "CMakeFiles/trb_uarch.dir/ittage.cc.o"
  "CMakeFiles/trb_uarch.dir/ittage.cc.o.d"
  "CMakeFiles/trb_uarch.dir/tage.cc.o"
  "CMakeFiles/trb_uarch.dir/tage.cc.o.d"
  "libtrb_uarch.a"
  "libtrb_uarch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_uarch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
