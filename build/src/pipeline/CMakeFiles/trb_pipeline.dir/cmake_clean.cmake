file(REMOVE_RECURSE
  "CMakeFiles/trb_pipeline.dir/o3core.cc.o"
  "CMakeFiles/trb_pipeline.dir/o3core.cc.o.d"
  "CMakeFiles/trb_pipeline.dir/sim_stats.cc.o"
  "CMakeFiles/trb_pipeline.dir/sim_stats.cc.o.d"
  "libtrb_pipeline.a"
  "libtrb_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
