# Empty compiler generated dependencies file for trb_pipeline.
# This may be replaced when dependencies are built.
