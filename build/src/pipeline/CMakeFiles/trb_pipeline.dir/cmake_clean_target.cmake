file(REMOVE_RECURSE
  "libtrb_pipeline.a"
)
