file(REMOVE_RECURSE
  "CMakeFiles/trb_common.dir/env.cc.o"
  "CMakeFiles/trb_common.dir/env.cc.o.d"
  "CMakeFiles/trb_common.dir/logging.cc.o"
  "CMakeFiles/trb_common.dir/logging.cc.o.d"
  "CMakeFiles/trb_common.dir/stats.cc.o"
  "CMakeFiles/trb_common.dir/stats.cc.o.d"
  "CMakeFiles/trb_common.dir/types.cc.o"
  "CMakeFiles/trb_common.dir/types.cc.o.d"
  "libtrb_common.a"
  "libtrb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
