# Empty compiler generated dependencies file for trb_common.
# This may be replaced when dependencies are built.
