file(REMOVE_RECURSE
  "libtrb_common.a"
)
