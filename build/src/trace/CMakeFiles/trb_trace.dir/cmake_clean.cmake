file(REMOVE_RECURSE
  "CMakeFiles/trb_trace.dir/branch_deduce.cc.o"
  "CMakeFiles/trb_trace.dir/branch_deduce.cc.o.d"
  "CMakeFiles/trb_trace.dir/champsim_trace.cc.o"
  "CMakeFiles/trb_trace.dir/champsim_trace.cc.o.d"
  "CMakeFiles/trb_trace.dir/cvp_trace.cc.o"
  "CMakeFiles/trb_trace.dir/cvp_trace.cc.o.d"
  "CMakeFiles/trb_trace.dir/trace_stats.cc.o"
  "CMakeFiles/trb_trace.dir/trace_stats.cc.o.d"
  "libtrb_trace.a"
  "libtrb_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
