file(REMOVE_RECURSE
  "libtrb_trace.a"
)
