
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/branch_deduce.cc" "src/trace/CMakeFiles/trb_trace.dir/branch_deduce.cc.o" "gcc" "src/trace/CMakeFiles/trb_trace.dir/branch_deduce.cc.o.d"
  "/root/repo/src/trace/champsim_trace.cc" "src/trace/CMakeFiles/trb_trace.dir/champsim_trace.cc.o" "gcc" "src/trace/CMakeFiles/trb_trace.dir/champsim_trace.cc.o.d"
  "/root/repo/src/trace/cvp_trace.cc" "src/trace/CMakeFiles/trb_trace.dir/cvp_trace.cc.o" "gcc" "src/trace/CMakeFiles/trb_trace.dir/cvp_trace.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/trace/CMakeFiles/trb_trace.dir/trace_stats.cc.o" "gcc" "src/trace/CMakeFiles/trb_trace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
