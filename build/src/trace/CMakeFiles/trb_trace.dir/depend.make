# Empty dependencies file for trb_trace.
# This may be replaced when dependencies are built.
