# Empty compiler generated dependencies file for trb_cache.
# This may be replaced when dependencies are built.
