file(REMOVE_RECURSE
  "libtrb_cache.a"
)
