file(REMOVE_RECURSE
  "CMakeFiles/trb_cache.dir/cache.cc.o"
  "CMakeFiles/trb_cache.dir/cache.cc.o.d"
  "CMakeFiles/trb_cache.dir/hierarchy.cc.o"
  "CMakeFiles/trb_cache.dir/hierarchy.cc.o.d"
  "libtrb_cache.a"
  "libtrb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
