# Empty dependencies file for trb_sim.
# This may be replaced when dependencies are built.
