file(REMOVE_RECURSE
  "libtrb_sim.a"
)
