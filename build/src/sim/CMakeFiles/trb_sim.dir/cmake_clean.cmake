file(REMOVE_RECURSE
  "CMakeFiles/trb_sim.dir/simulator.cc.o"
  "CMakeFiles/trb_sim.dir/simulator.cc.o.d"
  "libtrb_sim.a"
  "libtrb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
