file(REMOVE_RECURSE
  "libtrb_ipref.a"
)
