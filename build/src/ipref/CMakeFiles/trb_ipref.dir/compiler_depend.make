# Empty compiler generated dependencies file for trb_ipref.
# This may be replaced when dependencies are built.
