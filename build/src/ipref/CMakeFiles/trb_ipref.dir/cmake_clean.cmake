file(REMOVE_RECURSE
  "CMakeFiles/trb_ipref.dir/instr_prefetcher.cc.o"
  "CMakeFiles/trb_ipref.dir/instr_prefetcher.cc.o.d"
  "libtrb_ipref.a"
  "libtrb_ipref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_ipref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
