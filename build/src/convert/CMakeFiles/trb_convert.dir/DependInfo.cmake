
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/convert/cvp2champsim.cc" "src/convert/CMakeFiles/trb_convert.dir/cvp2champsim.cc.o" "gcc" "src/convert/CMakeFiles/trb_convert.dir/cvp2champsim.cc.o.d"
  "/root/repo/src/convert/improvements.cc" "src/convert/CMakeFiles/trb_convert.dir/improvements.cc.o" "gcc" "src/convert/CMakeFiles/trb_convert.dir/improvements.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/trb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trb_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
