# Empty dependencies file for trb_convert.
# This may be replaced when dependencies are built.
