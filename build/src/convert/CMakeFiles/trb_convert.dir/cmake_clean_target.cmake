file(REMOVE_RECURSE
  "libtrb_convert.a"
)
