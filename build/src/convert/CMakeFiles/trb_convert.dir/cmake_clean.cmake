file(REMOVE_RECURSE
  "CMakeFiles/trb_convert.dir/cvp2champsim.cc.o"
  "CMakeFiles/trb_convert.dir/cvp2champsim.cc.o.d"
  "CMakeFiles/trb_convert.dir/improvements.cc.o"
  "CMakeFiles/trb_convert.dir/improvements.cc.o.d"
  "libtrb_convert.a"
  "libtrb_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trb_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
