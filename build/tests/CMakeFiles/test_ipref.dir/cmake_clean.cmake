file(REMOVE_RECURSE
  "CMakeFiles/test_ipref.dir/test_ipref.cc.o"
  "CMakeFiles/test_ipref.dir/test_ipref.cc.o.d"
  "test_ipref"
  "test_ipref.pdb"
  "test_ipref[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
