# Empty compiler generated dependencies file for test_ipref.
# This may be replaced when dependencies are built.
