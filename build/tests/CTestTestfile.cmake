# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_synth[1]_include.cmake")
include("/root/repo/build/tests/test_convert[1]_include.cmake")
include("/root/repo/build/tests/test_uarch[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_ipref[1]_include.cmake")
include("/root/repo/build/tests/test_experiments[1]_include.cmake")
include("/root/repo/build/tests/test_sim_stats[1]_include.cmake")
