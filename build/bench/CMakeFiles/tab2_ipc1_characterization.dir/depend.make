# Empty dependencies file for tab2_ipc1_characterization.
# This may be replaced when dependencies are built.
