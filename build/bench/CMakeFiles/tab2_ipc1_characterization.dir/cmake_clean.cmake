file(REMOVE_RECURSE
  "CMakeFiles/tab2_ipc1_characterization.dir/tab2_ipc1_characterization.cc.o"
  "CMakeFiles/tab2_ipc1_characterization.dir/tab2_ipc1_characterization.cc.o.d"
  "tab2_ipc1_characterization"
  "tab2_ipc1_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_ipc1_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
