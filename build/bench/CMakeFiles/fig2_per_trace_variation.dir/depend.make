# Empty dependencies file for fig2_per_trace_variation.
# This may be replaced when dependencies are built.
