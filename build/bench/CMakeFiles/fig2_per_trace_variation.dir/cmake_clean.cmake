file(REMOVE_RECURSE
  "CMakeFiles/fig2_per_trace_variation.dir/fig2_per_trace_variation.cc.o"
  "CMakeFiles/fig2_per_trace_variation.dir/fig2_per_trace_variation.cc.o.d"
  "fig2_per_trace_variation"
  "fig2_per_trace_variation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_per_trace_variation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
