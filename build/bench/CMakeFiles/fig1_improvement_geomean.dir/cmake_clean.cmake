file(REMOVE_RECURSE
  "CMakeFiles/fig1_improvement_geomean.dir/fig1_improvement_geomean.cc.o"
  "CMakeFiles/fig1_improvement_geomean.dir/fig1_improvement_geomean.cc.o.d"
  "fig1_improvement_geomean"
  "fig1_improvement_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_improvement_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
