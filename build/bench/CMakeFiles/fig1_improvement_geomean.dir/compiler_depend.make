# Empty compiler generated dependencies file for fig1_improvement_geomean.
# This may be replaced when dependencies are built.
