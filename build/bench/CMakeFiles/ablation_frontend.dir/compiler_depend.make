# Empty compiler generated dependencies file for ablation_frontend.
# This may be replaced when dependencies are built.
