file(REMOVE_RECURSE
  "CMakeFiles/ablation_frontend.dir/ablation_frontend.cc.o"
  "CMakeFiles/ablation_frontend.dir/ablation_frontend.cc.o.d"
  "ablation_frontend"
  "ablation_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
