file(REMOVE_RECURSE
  "CMakeFiles/tab3_ipc1_ranking.dir/tab3_ipc1_ranking.cc.o"
  "CMakeFiles/tab3_ipc1_ranking.dir/tab3_ipc1_ranking.cc.o.d"
  "tab3_ipc1_ranking"
  "tab3_ipc1_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_ipc1_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
