# Empty compiler generated dependencies file for tab3_ipc1_ranking.
# This may be replaced when dependencies are built.
