file(REMOVE_RECURSE
  "CMakeFiles/fig3_branch_mpki_slowdown.dir/fig3_branch_mpki_slowdown.cc.o"
  "CMakeFiles/fig3_branch_mpki_slowdown.dir/fig3_branch_mpki_slowdown.cc.o.d"
  "fig3_branch_mpki_slowdown"
  "fig3_branch_mpki_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_branch_mpki_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
