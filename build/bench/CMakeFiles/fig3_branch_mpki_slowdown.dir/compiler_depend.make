# Empty compiler generated dependencies file for fig3_branch_mpki_slowdown.
# This may be replaced when dependencies are built.
