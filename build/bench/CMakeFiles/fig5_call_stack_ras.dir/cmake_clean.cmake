file(REMOVE_RECURSE
  "CMakeFiles/fig5_call_stack_ras.dir/fig5_call_stack_ras.cc.o"
  "CMakeFiles/fig5_call_stack_ras.dir/fig5_call_stack_ras.cc.o.d"
  "fig5_call_stack_ras"
  "fig5_call_stack_ras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_call_stack_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
