# Empty compiler generated dependencies file for fig5_call_stack_ras.
# This may be replaced when dependencies are built.
