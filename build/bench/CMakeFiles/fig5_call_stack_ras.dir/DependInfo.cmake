
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_call_stack_ras.cc" "bench/CMakeFiles/fig5_call_stack_ras.dir/fig5_call_stack_ras.cc.o" "gcc" "bench/CMakeFiles/fig5_call_stack_ras.dir/fig5_call_stack_ras.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/trb_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/trb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/trb_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/ipref/CMakeFiles/trb_ipref.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/trb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/uarch/CMakeFiles/trb_uarch.dir/DependInfo.cmake"
  "/root/repo/build/src/convert/CMakeFiles/trb_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/trb_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/trb_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
