# Empty dependencies file for fig4_base_update_speedup.
# This may be replaced when dependencies are built.
