# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_base_update_speedup.
