file(REMOVE_RECURSE
  "CMakeFiles/fig4_base_update_speedup.dir/fig4_base_update_speedup.cc.o"
  "CMakeFiles/fig4_base_update_speedup.dir/fig4_base_update_speedup.cc.o.d"
  "fig4_base_update_speedup"
  "fig4_base_update_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_base_update_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
