file(REMOVE_RECURSE
  "CMakeFiles/converter_study.dir/converter_study.cpp.o"
  "CMakeFiles/converter_study.dir/converter_study.cpp.o.d"
  "converter_study"
  "converter_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/converter_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
