# Empty dependencies file for converter_study.
# This may be replaced when dependencies are built.
