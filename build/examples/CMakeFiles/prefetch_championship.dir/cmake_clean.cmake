file(REMOVE_RECURSE
  "CMakeFiles/prefetch_championship.dir/prefetch_championship.cpp.o"
  "CMakeFiles/prefetch_championship.dir/prefetch_championship.cpp.o.d"
  "prefetch_championship"
  "prefetch_championship.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_championship.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
