# Empty compiler generated dependencies file for prefetch_championship.
# This may be replaced when dependencies are built.
