# Empty dependencies file for cvp2champsim_tool.
# This may be replaced when dependencies are built.
