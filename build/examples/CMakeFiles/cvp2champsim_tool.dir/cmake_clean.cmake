file(REMOVE_RECURSE
  "CMakeFiles/cvp2champsim_tool.dir/cvp2champsim_tool.cpp.o"
  "CMakeFiles/cvp2champsim_tool.dir/cvp2champsim_tool.cpp.o.d"
  "cvp2champsim_tool"
  "cvp2champsim_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvp2champsim_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
