/**
 * @file
 * trace_perf -- the perf-regression gate over BENCH run manifests.
 *
 * Compares a baseline trb-bench-v1 record (or a directory of them)
 * against a candidate, metric by metric, with per-metric noise
 * thresholds.  Throughput metrics (paths ending in items_per_second)
 * gate; wall-clock rows are reported for context only.
 *
 *   trace_perf base.json cand.json                   # one pair
 *   trace_perf base_dir/ cand_dir/                   # pair BENCH_*.json
 *   trace_perf --threshold 8 base.json cand.json     # global noise band
 *   trace_perf --threshold totals/items_per_second=2 ...   # per metric
 *
 * Exit status: 0 no regression, 1 at least one gated metric regressed
 * (or a comparison was impossible -- schema mismatch, missing files),
 * 2 usage error.
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/stat.h>

#include <dirent.h>

#include "common/json.hh"
#include "obs/perf_compare.hh"

namespace
{

using namespace trb;

void
usage(std::ostream &os)
{
    os << "usage: trace_perf [options] <baseline> <candidate>\n"
          "\n"
          "Diff two BENCH_<name>.json run manifests (or two directories\n"
          "of them, paired by filename) and fail on perf regressions.\n"
          "Throughput metrics (*items_per_second) gate; wall-clock rows\n"
          "are context.\n"
          "\n"
          "options:\n"
          "  --threshold PCT          global noise threshold (default 5)\n"
          "  --threshold METRIC=PCT   override for one flat metric path\n"
          "                           (repeatable)\n"
          "  -h, --help               this text\n"
          "\n"
          "exit: 0 ok, 1 regression or comparison failure, 2 usage\n";
}

bool
isDirectory(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/** BENCH_*.json entries of @p dir, sorted. */
std::vector<std::string>
benchRecordsIn(const std::string &dir)
{
    std::vector<std::string> names;
    DIR *d = ::opendir(dir.c_str());
    if (!d)
        return names;
    while (const dirent *entry = ::readdir(d)) {
        const std::string name = entry->d_name;
        if (name.rfind("BENCH_", 0) == 0 &&
            name.size() > 5 && name.ends_with(".json"))
            names.push_back(name);
    }
    ::closedir(d);
    std::sort(names.begin(), names.end());
    return names;
}

bool
loadRecord(const std::string &path, JsonFlat &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_perf: cannot open " << path << "\n";
        return false;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!parseJson(text.str(), out, &error)) {
        std::cerr << "trace_perf: " << path << ": " << error << "\n";
        return false;
    }
    return true;
}

/** @return 0 ok, 1 regression/failure. */
int
compareFiles(const std::string &base_path, const std::string &cand_path,
             const obs::PerfCompareOptions &opts)
{
    JsonFlat base, cand;
    if (!loadRecord(base_path, base) || !loadRecord(cand_path, cand))
        return 1;
    const obs::PerfCompareResult result =
        obs::comparePerfRecords(base, cand, opts);
    std::cout << "== " << base_path << " vs " << cand_path << "\n";
    obs::renderPerfTable(std::cout, result);
    return result.ok() ? 0 : 1;
}

int
compareDirs(const std::string &base_dir, const std::string &cand_dir,
            const obs::PerfCompareOptions &opts)
{
    const std::vector<std::string> base_names = benchRecordsIn(base_dir);
    const std::vector<std::string> cand_names = benchRecordsIn(cand_dir);
    if (base_names.empty()) {
        std::cerr << "trace_perf: no BENCH_*.json in " << base_dir << "\n";
        return 1;
    }

    int status = 0;
    std::size_t compared = 0;
    for (const std::string &name : base_names) {
        if (std::find(cand_names.begin(), cand_names.end(), name) ==
            cand_names.end()) {
            std::cout << "== " << name
                      << ": missing from candidate, skipped\n";
            continue;
        }
        ++compared;
        if (compareFiles(base_dir + "/" + name, cand_dir + "/" + name,
                         opts) != 0)
            status = 1;
    }
    for (const std::string &name : cand_names)
        if (std::find(base_names.begin(), base_names.end(), name) ==
            base_names.end())
            std::cout << "== " << name
                      << ": new in candidate, no baseline to gate on\n";
    if (compared == 0) {
        std::cerr << "trace_perf: no bench record name shared by both "
                     "directories\n";
        return 1;
    }
    return status;
}

/** Parse "PCT" or "METRIC=PCT" into @p opts; false on a bad number. */
bool
applyThreshold(const std::string &arg, obs::PerfCompareOptions &opts)
{
    const std::size_t eq = arg.rfind('=');
    const std::string number_text =
        eq == std::string::npos ? arg : arg.substr(eq + 1);
    char *end = nullptr;
    const double pct = std::strtod(number_text.c_str(), &end);
    if (!end || *end || number_text.empty() || pct < 0.0)
        return false;
    if (eq == std::string::npos)
        opts.thresholdPercent = pct;
    else
        opts.perMetricThresholdPercent[arg.substr(0, eq)] = pct;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::PerfCompareOptions opts;
    std::vector<std::string> positional;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--threshold") {
            if (++i >= argc || !applyThreshold(argv[i], opts)) {
                std::cerr << "trace_perf: --threshold needs PCT or "
                             "METRIC=PCT\n";
                return 2;
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "trace_perf: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }
    if (positional.size() != 2) {
        usage(std::cerr);
        return 2;
    }

    const std::string &base = positional[0];
    const std::string &cand = positional[1];
    if (isDirectory(base) != isDirectory(cand)) {
        std::cerr << "trace_perf: cannot compare a directory with a "
                     "file\n";
        return 2;
    }
    return isDirectory(base) ? compareDirs(base, cand, opts)
                             : compareFiles(base, cand, opts);
}
