/**
 * @file
 * trace_served -- the multi-tenant simulation daemon.
 *
 *   TRB_STORE=/var/cache/trb trace_served --socket /run/trb.sock
 *
 * Listens on a Unix-domain socket, accepts trb-serve-v1 requests (see
 * docs/serving.md) and runs them on the shared trb::par pool with
 * per-client round-robin fairness and a bounded queue.  Warm requests
 * are answered straight from the trb::store artifact cache.
 *
 * SIGTERM/SIGINT trigger a graceful shutdown: queued requests get a
 * typed `busy` reply, inflight simulations finish and flush, the
 * socket is unlinked, and the process exits 0.  The usual telemetry
 * surface applies: TRB_OBS_SAMPLE_MS streams serve.* gauges as JSONL
 * while the daemon runs, TRB_OBS_JSON/TRB_OBS_CSV dump the registry at
 * exit.
 *
 * Exit status: 0 clean shutdown, 2 usage or bind error.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/env.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "serve/server.hh"

namespace
{

using namespace trb;

void
usage(std::ostream &os)
{
    os << "usage: trace_served [--socket PATH] [--queue N] "
          "[--quantum N]\n"
          "                    [--watchdog-ms N] [--write-ms N]\n"
          "\n"
          "Serve trb-serve-v1 simulation requests over a Unix-domain\n"
          "socket until SIGTERM/SIGINT.  docs/serving.md documents the\n"
          "protocol and operations.\n"
          "\n"
          "options (flags win over the environment):\n"
          "  --socket PATH   listening socket (default $TRB_SERVE_SOCKET\n"
          "                  or trb_serve.sock)\n"
          "  --queue N       queued-request bound before typed busy\n"
          "                  replies (default $TRB_SERVE_QUEUE or 64)\n"
          "  --quantum N     requests per client per round-robin turn\n"
          "                  (default $TRB_SERVE_QUANTUM or 1)\n"
          "  --watchdog-ms N deadline/dead-client sweep period; 0\n"
          "                  disables the watchdog (default\n"
          "                  $TRB_SERVE_WATCHDOG_MS or 50)\n"
          "  --write-ms N    per-reply peer-readiness bound; 0 blocks\n"
          "                  (default $TRB_SERVE_WRITE_MS or 5000)\n"
          "  -h, --help      this text\n";
}

/** write() end of the self-pipe the signal handler pokes. */
int g_signal_pipe_wr = -1;

void
onSignal(int)
{
    const char byte = 1;
    // Best effort; a full pipe means a wake-up is already pending.
    [[maybe_unused]] ssize_t n = ::write(g_signal_pipe_wr, &byte, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServeConfig cfg = serve::ServeConfig::fromEnv();

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "trace_served: " << name
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        auto u64 = [&](const char *name, std::uint64_t &out,
                       bool allowZero) {
            const char *v = value(name);
            if (!v)
                return false;
            char *end = nullptr;
            unsigned long long parsed = std::strtoull(v, &end, 10);
            if (end == v || *end != '\0' ||
                (parsed == 0 && !allowZero)) {
                std::cerr << "trace_served: " << name << " wants a "
                          << (allowZero ? "non-negative" : "positive")
                          << " integer, got '" << v << "'\n";
                return false;
            }
            out = parsed;
            return true;
        };
        auto number = [&](const char *name, std::size_t &out) {
            std::uint64_t parsed = 0;
            if (!u64(name, parsed, false))
                return false;
            out = static_cast<std::size_t>(parsed);
            return true;
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--socket") {
            const char *v = value("--socket");
            if (!v)
                return 2;
            cfg.socketPath = v;
        } else if (arg == "--queue") {
            if (!number("--queue", cfg.queueBound))
                return 2;
        } else if (arg == "--quantum") {
            if (!number("--quantum", cfg.quantum))
                return 2;
        } else if (arg == "--watchdog-ms") {
            if (!u64("--watchdog-ms", cfg.watchdogMs, true))
                return 2;
        } else if (arg == "--write-ms") {
            if (!u64("--write-ms", cfg.writeTimeoutMs, true))
                return 2;
        } else {
            std::cerr << "trace_served: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    // Self-pipe: the handler only writes a byte; main() blocks on the
    // read end, so all real shutdown work happens outside signal
    // context.
    int pipeFds[2];
    if (::pipe(pipeFds) != 0) {
        std::cerr << "trace_served: pipe: " << std::strerror(errno)
                  << "\n";
        return 2;
    }
    g_signal_pipe_wr = pipeFds[1];
    struct sigaction sa{};
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    auto sampler = obs::Sampler::startFromEnv();

    serve::ServeDaemon daemon(cfg);
    if (Status st = daemon.start(); !st.ok()) {
        std::cerr << "trace_served: " << st.toString() << "\n";
        return 2;
    }
    std::cout << "trace_served: listening on " << cfg.socketPath
              << std::endl;

    // Sleep until a signal arrives.
    char byte = 0;
    while (::read(pipeFds[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::cout << "trace_served: shutting down" << std::endl;
    daemon.stop();
    std::cout << "trace_served: served " << daemon.served()
              << " request(s)" << std::endl;

    sampler.reset();
    obs::finish();
    ::close(pipeFds[0]);
    ::close(pipeFds[1]);
    return 0;
}
