/**
 * @file
 * trace_lint -- the trb::lint command-line front-end.
 *
 * Statically checks converted ChampSim traces (and, when the originating
 * CVP-1 stream is given, the conversion itself) against the invariants a
 * fully improved cvp2champsim conversion guarantees.  No simulation runs.
 *
 *   trace_lint trace.champsim.gz                  # structural rules only
 *   trace_lint --cvp orig.cvp.gz trace.champsim.gz   # all rules (paired)
 *   trace_lint --synth cvp1 --imp No_imp          # lint a synth suite
 *   trace_lint --list-rules                       # rule catalog
 *   trace_lint --selftest                         # env registry vs docs
 *
 * Multiple trace files are linted in parallel on trb::par's global pool
 * (TRB_JOBS threads); reports are index-addressed, so output order always
 * matches input order.  The --synth mode fans out through the experiment
 * harness's forEachTrace(), exactly like the bench binaries.
 *
 * Exit status: 0 clean (relative to --fail-on), 1 findings at or above
 * the --fail-on threshold, 2 usage error or unreadable/corrupt input
 * (one-line diagnostic on stderr, never a crash).
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "convert/cvp2champsim.hh"
#include "convert/improvements.hh"
#include "experiments/experiment.hh"
#include "lint/lint.hh"
#include "par/thread_pool.hh"
#include "synth/suites.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace
{

using namespace trb;

enum class FailOn
{
    None,
    Warn,
    Error,
};

struct CliOptions
{
    std::vector<std::string> traces;   //!< positional ChampSim traces
    std::vector<std::string> cvps;     //!< --cvp files, paired by position
    std::string synthSuite;            //!< "cvp1" or "ipc1" (empty: files)
    ImprovementSet imps = kAllImps;    //!< converter config for --synth
    lint::LintOptions lintOpts;
    FailOn failOn = FailOn::Error;
    std::string jsonPath;              //!< "-" for stdout
    std::string docsPath = "docs/env-vars.md";   //!< --selftest table
    bool json = false;
    bool listRules = false;
    bool selftest = false;
};

void
usage(std::ostream &os)
{
    os << "usage: trace_lint [options] <trace.champsim[.gz]>...\n"
          "       trace_lint [options] --synth cvp1|ipc1 [--imp SET]\n"
          "       trace_lint --list-rules\n"
          "       trace_lint --selftest [--docs FILE]\n"
          "\n"
          "Statically check converted ChampSim traces against the\n"
          "invariants of a fully improved CVP-1 conversion (no simulation).\n"
          "\n"
          "options:\n"
          "  --cvp FILE        originating CVP-1 trace for the Nth\n"
          "                    positional trace (repeatable); enables the\n"
          "                    paired rules\n"
          "  --synth SUITE     lint conversions of the synthetic cvp1 or\n"
          "                    ipc1 suite instead of files\n"
          "  --imp SET         improvement set for --synth (No_imp,\n"
          "                    Memory_imps, Branch_imps, All_imps,\n"
          "                    IPC1_imps, imp_*; default All_imps)\n"
          "  --enable LIST     comma-separated rule ids to run (default\n"
          "                    all)\n"
          "  --disable LIST    comma-separated rule ids to skip\n"
          "  --max-diag N      diagnostics stored per rule (default 20)\n"
          "  --fail-on KIND    error|warn|none: lowest severity that\n"
          "                    fails the run (default error)\n"
          "  --json[=FILE]     machine-readable report to FILE (default\n"
          "                    stdout)\n"
          "  --list-rules      print the rule catalog and exit\n"
          "  --selftest        check that every registered TRB_* env\n"
          "                    variable is documented in the env-vars\n"
          "                    table, then exit\n"
          "  --docs FILE       env-vars table for --selftest (default\n"
          "                    docs/env-vars.md)\n"
          "  -h, --help        this text\n";
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** Parse argv; returns false (after printing to stderr) on bad usage. */
bool
parseArgs(int argc, char **argv, CliOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "trace_lint: " << name
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg == "--selftest") {
            opts.selftest = true;
        } else if (arg == "--docs") {
            const char *v = value("--docs");
            if (!v)
                return false;
            opts.docsPath = v;
        } else if (arg == "--cvp") {
            const char *v = value("--cvp");
            if (!v)
                return false;
            opts.cvps.push_back(v);
        } else if (arg == "--synth") {
            const char *v = value("--synth");
            if (!v)
                return false;
            opts.synthSuite = v;
            if (opts.synthSuite != "cvp1" && opts.synthSuite != "ipc1") {
                std::cerr << "trace_lint: --synth takes cvp1 or ipc1, got '"
                          << opts.synthSuite << "'\n";
                return false;
            }
        } else if (arg == "--imp") {
            const char *v = value("--imp");
            if (!v)
                return false;
            if (!parseImprovementSet(v, opts.imps)) {
                std::cerr << "trace_lint: unknown improvement set '" << v
                          << "'\n";
                return false;
            }
        } else if (arg == "--enable") {
            const char *v = value("--enable");
            if (!v)
                return false;
            for (auto &id : splitList(v))
                opts.lintOpts.enable.push_back(id);
        } else if (arg == "--disable") {
            const char *v = value("--disable");
            if (!v)
                return false;
            for (auto &id : splitList(v))
                opts.lintOpts.disable.push_back(id);
        } else if (arg == "--max-diag") {
            const char *v = value("--max-diag");
            if (!v)
                return false;
            opts.lintOpts.maxDiagnosticsPerRule =
                std::strtoull(v, nullptr, 10);
        } else if (arg.rfind("--fail-on", 0) == 0) {
            std::string v;
            if (arg.size() > 9 && arg[9] == '=') {
                v = arg.substr(10);
            } else {
                const char *p = value("--fail-on");
                if (!p)
                    return false;
                v = p;
            }
            if (v == "error") {
                opts.failOn = FailOn::Error;
            } else if (v == "warn") {
                opts.failOn = FailOn::Warn;
            } else if (v == "none") {
                opts.failOn = FailOn::None;
            } else {
                std::cerr << "trace_lint: --fail-on takes error, warn or "
                             "none, got '" << v << "'\n";
                return false;
            }
        } else if (arg.rfind("--json", 0) == 0) {
            opts.json = true;
            opts.jsonPath =
                (arg.size() > 6 && arg[6] == '=') ? arg.substr(7) : "-";
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_lint: unknown option '" << arg << "'\n";
            return false;
        } else {
            opts.traces.push_back(arg);
        }
    }

    std::string bad;
    std::vector<std::string> resolved;
    if (!opts.lintOpts.resolveRules(resolved, bad)) {
        std::cerr << "trace_lint: unknown rule '" << bad
                  << "' (see --list-rules)\n";
        return false;
    }
    if (opts.listRules || opts.selftest)
        return true;
    if (!opts.synthSuite.empty() && !opts.traces.empty()) {
        std::cerr << "trace_lint: --synth and trace files are mutually "
                     "exclusive\n";
        return false;
    }
    if (opts.synthSuite.empty() && opts.traces.empty()) {
        usage(std::cerr);
        return false;
    }
    if (opts.cvps.size() > opts.traces.size()) {
        std::cerr << "trace_lint: more --cvp files than traces\n";
        return false;
    }
    return true;
}

/**
 * Check that every variable in the trb::env registry appears in the
 * env-vars documentation table.  This is what keeps docs/env-vars.md
 * honest: adding a knob to the registry without a doc row fails CI.
 * Exit 0 all documented, 1 missing rows, 2 unreadable docs file.
 */
int
runSelftest(const std::string &docsPath)
{
    std::ifstream file(docsPath);
    if (!file) {
        std::cerr << "trace_lint: cannot read '" << docsPath
                  << "' (pass --docs FILE)\n";
        return 2;
    }
    std::stringstream buf;
    buf << file.rdbuf();
    const std::string docs = buf.str();

    std::uint64_t missing = 0;
    for (const env::VarInfo &var : env::registry()) {
        if (docs.find(var.name) == std::string::npos) {
            std::cerr << "trace_lint: " << var.name << " (" << var.summary
                      << ") is not documented in " << docsPath << "\n";
            ++missing;
        }
    }
    std::cout << "selftest: " << env::registry().size()
              << " registered env var(s), " << missing << " undocumented\n";
    return missing == 0 ? 0 : 1;
}

void
listRules()
{
    for (const lint::RuleInfo &info : lint::ruleCatalog()) {
        std::cout << info.id << " [" << lint::severityName(info.severity)
                  << (info.needsCvp ? ", paired" : "") << "]\n    "
                  << info.summary << "\n    (" << info.citation << ")\n";
    }
}

/** One lint job and its index-addressed result. */
struct Job
{
    std::size_t index = 0;
    std::string name;
    std::string csPath;
    std::string cvpPath;   //!< empty: stream-only
};

int
runFiles(const CliOptions &opts, std::vector<std::string> &names,
         std::vector<lint::LintReport> &reports)
{
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < opts.traces.size(); ++i) {
        Job job;
        job.index = i;
        job.csPath = opts.traces[i];
        job.name = opts.traces[i];
        if (i < opts.cvps.size())
            job.cvpPath = opts.cvps[i];
        jobs.push_back(std::move(job));
    }

    // Index-addressed fan-out: report i always belongs to input i, so
    // the output is schedule-independent.  Unreadable or corrupt inputs
    // land a Status in their slot instead of killing the process; the
    // first (in input order) is reported after the joins.
    std::vector<Status> failed(jobs.size());
    reports = par::ThreadPool::global().parallelMap(
        jobs, [&](const Job &job) {
            Expected<ChampSimTrace> cs = tryReadChampSimTrace(job.csPath);
            if (!cs.ok()) {
                failed[job.index] = cs.status();
                return lint::LintReport{};
            }
            if (job.cvpPath.empty())
                return lint::lintTrace(cs.value(), opts.lintOpts);
            Expected<CvpTrace> cvp = tryReadCvpTrace(job.cvpPath);
            if (!cvp.ok()) {
                failed[job.index] = cvp.status();
                return lint::LintReport{};
            }
            return lint::lintConverted(cvp.value(), cs.value(),
                                       opts.lintOpts);
        });
    for (const Status &status : failed) {
        if (!status.ok()) {
            std::cerr << "trace_lint: " << status.toString() << "\n";
            return 2;
        }
    }
    for (const Job &job : jobs)
        names.push_back(job.name);
    return 0;
}

int
runSynth(const CliOptions &opts, std::vector<std::string> &names,
         std::vector<lint::LintReport> &reports)
{
    std::vector<TraceSpec> suite = opts.synthSuite == "cvp1"
                                       ? cvp1PublicSuite(50000)
                                       : ipc1Suite(50000);
    std::size_t count = suiteCount(suite);
    names.resize(count);
    reports.resize(count);
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        Cvp2ChampSim conv(opts.imps);
        ChampSimTrace cs = conv.convert(cvp);
        names[i] = spec.name;
        reports[i] = lint::lintConverted(cvp, cs, opts.lintOpts);
    });
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;
    if (opts.selftest)
        return runSelftest(opts.docsPath);
    if (opts.listRules) {
        listRules();
        return 0;
    }

    std::vector<std::string> names;
    std::vector<lint::LintReport> reports;
    int rc = opts.synthSuite.empty() ? runFiles(opts, names, reports)
                                     : runSynth(opts, names, reports);
    if (rc != 0)
        return rc;

    std::uint64_t errors = 0;
    std::uint64_t warnings = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        errors += reports[i].errors;
        warnings += reports[i].warnings;
        lint::writeReportText(std::cout, reports[i], names[i]);
    }
    if (reports.size() > 1)
        std::cout << "total: " << errors << " error(s), " << warnings
                  << " warning(s) across " << reports.size()
                  << " trace(s)\n";

    if (opts.json) {
        std::ofstream file;
        std::ostream *os = &std::cout;
        if (opts.jsonPath != "-") {
            file.open(opts.jsonPath);
            if (!file) {
                std::cerr << "trace_lint: cannot write '" << opts.jsonPath
                          << "'\n";
                return 2;
            }
            os = &file;
        }
        *os << "{\"reports\": [";
        for (std::size_t i = 0; i < reports.size(); ++i) {
            if (i)
                *os << ", ";
            lint::writeReportJson(*os, reports[i], names[i]);
        }
        *os << "], \"totals\": {\"errors\": " << errors
            << ", \"warnings\": " << warnings << "}}\n";
    }

    switch (opts.failOn) {
      case FailOn::Error:
        return errors > 0 ? 1 : 0;
      case FailOn::Warn:
        return errors + warnings > 0 ? 1 : 0;
      case FailOn::None:
        return 0;
    }
    return 0;
}
