/**
 * @file
 * Regenerates the committed resilience fixtures under tests/data/resil/:
 * small deterministic traces damaged in the exact ways the trb::resil
 * error taxonomy classifies.  tests/test_resil.cc (and the CI fault
 * smoke job) assert that every fixture produces its expected error
 * class, a one-line diagnostic, and a non-zero tool exit -- never a
 * crash.
 *
 *   clean.cvp.gz          valid control trace
 *   truncated.cvp.gz      byte stream cut mid-record (TruncatedInput)
 *   badmagic.cvp.gz       one bit flipped in the magic (BadMagic)
 *   badversion.cvp.gz     header version corrupted (CorruptRecord)
 *   garbage_tail.cvp.gz   noise appended past the final record
 *                         (CorruptRecord, rule cvp.trailing)
 *   clean.champsimtrace.gz       valid control trace
 *   truncated.champsimtrace.gz   cut mid 64-byte record (TruncatedInput)
 *
 * Usage:  make_resil_testdata [output-dir]   (default tests/data/resil)
 */

#include <zlib.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "synth/generator.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace
{

using namespace trb;

void
writeGzBytes(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    gzFile f = gzopen(path.c_str(), "wb6");
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    if (!bytes.empty() &&
        gzwrite(f, bytes.data(), static_cast<unsigned>(bytes.size())) <= 0) {
        std::fprintf(stderr, "write error on %s\n", path.c_str());
        std::exit(1);
    }
    if (gzclose(f) != Z_OK) {
        std::fprintf(stderr, "close error on %s\n", path.c_str());
        std::exit(1);
    }
    std::printf("%s: %zu bytes\n", path.c_str(), bytes.size());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = argc >= 2 ? argv[1] : "tests/data/resil";
    std::filesystem::create_directories(dir);

    CvpTrace cvp = TraceGenerator(serverParams(42)).generate(400);
    std::vector<std::uint8_t> bytes = serializeCvpTrace(cvp);

    writeGzBytes(dir + "/clean.cvp.gz", bytes);

    // Cut mid-record, well past the header, count field left promising
    // the full trace.
    std::vector<std::uint8_t> truncated(
        bytes.begin(), bytes.begin() + static_cast<long>(bytes.size() / 3));
    writeGzBytes(dir + "/truncated.cvp.gz", truncated);

    std::vector<std::uint8_t> badmagic = bytes;
    badmagic[3] ^= 0x10;   // one bit in the magic
    writeGzBytes(dir + "/badmagic.cvp.gz", badmagic);

    std::vector<std::uint8_t> badversion = bytes;
    badversion[9] = 0x7e;   // version u32 -> garbage
    writeGzBytes(dir + "/badversion.cvp.gz", badversion);

    std::vector<std::uint8_t> garbage_tail = bytes;
    for (unsigned i = 0; i < 37; ++i)
        garbage_tail.push_back(static_cast<std::uint8_t>(0xa5 + 13 * i));
    writeGzBytes(dir + "/garbage_tail.cvp.gz", garbage_tail);

    ChampSimTrace cs(100);
    for (std::size_t i = 0; i < cs.size(); ++i) {
        cs[i].ip = 0x400000 + 4 * i;
        cs[i].isBranch = (i % 10) == 9;
        cs[i].branchTaken = cs[i].isBranch;
    }
    std::vector<std::uint8_t> cs_bytes(cs.size() * sizeof(ChampSimRecord));
    std::memcpy(cs_bytes.data(), cs.data(), cs_bytes.size());
    writeGzBytes(dir + "/clean.champsimtrace.gz", cs_bytes);

    std::vector<std::uint8_t> cs_truncated(
        cs_bytes.begin(), cs_bytes.begin() + 64 * 41 + 17);
    writeGzBytes(dir + "/truncated.champsimtrace.gz", cs_truncated);

    return 0;
}
