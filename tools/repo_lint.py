#!/usr/bin/env python3
"""Source-tree policy gate, run by CI next to the unit tests.

Checks enforced:

 1. No raw ``getenv(`` in production code (src/, tools/) outside
    src/common/env.cc -- every environment read must go through the
    typed trb::env accessors so the knob registry stays authoritative.
    (tests/ may use getenv for save/restore guards.)

 2. Every TRB_* variable registered in src/common/env.cc is documented
    in docs/env-vars.md, and every TRB_* knob named in that table is
    registered -- the table and the registry may never drift apart.

Exit status: 0 clean, 1 violations (each printed as file:line: message).
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
ENV_CC = ROOT / "src" / "common" / "env.cc"
ENV_DOC = ROOT / "docs" / "env-vars.md"

errors = []


def check_raw_getenv():
    pattern = re.compile(r"\bgetenv\s*\(")
    for top in ("src", "tools"):
        for path in sorted((ROOT / top).rglob("*")):
            if path.suffix not in (".cc", ".hh"):
                continue
            if path == ENV_CC:
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if pattern.search(line):
                    rel = path.relative_to(ROOT)
                    errors.append(
                        f"{rel}:{lineno}: raw getenv() outside "
                        f"src/common/env.cc -- use the trb::env accessors")


def check_env_docs():
    registered = set(re.findall(r'\{"(TRB_[A-Z0-9_]+)"', ENV_CC.read_text()))
    if not registered:
        errors.append(f"{ENV_CC.relative_to(ROOT)}: no registered "
                      f"TRB_* variables found (registry parse failure?)")
        return
    doc_text = ENV_DOC.read_text()
    documented = set(re.findall(r"`(TRB_[A-Z0-9_]+)`", doc_text))
    for name in sorted(registered - documented):
        errors.append(f"{ENV_DOC.relative_to(ROOT)}: registered variable "
                      f"{name} is not documented")
    for name in sorted(documented - registered):
        errors.append(f"{ENV_DOC.relative_to(ROOT)}: documents {name}, "
                      f"which is not in the src/common/env.cc registry")


def main():
    check_raw_getenv()
    check_env_docs()
    for err in errors:
        print(err)
    if errors:
        print(f"repo_lint: {len(errors)} violation(s)")
        return 1
    print("repo_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
