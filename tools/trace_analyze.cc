/**
 * @file
 * trace_analyze -- the trb::flow command-line front-end.
 *
 * Reconstructs the whole-program view of converted µop traces (CFG,
 * dataflow, region signatures) and runs every lint rule over it: the
 * streaming rules first, then the CFG-aware whole-program rules the
 * linear scan cannot express.  No simulation runs.
 *
 *   trace_analyze trace.champsim.gz                 # stream-only rules
 *   trace_analyze --cvp orig.cvp.gz trace.champsim.gz   # paired
 *   trace_analyze suite:cvp1:srv_web                # a served suite entry
 *   trace_analyze preset:int:7 --imp All_imps       # a synth preset
 *   trace_analyze file:orig.cvp.gz                  # a CVP-1 file, paired
 *   trace_analyze --synth cvp1                      # the whole suite
 *
 * Spec arguments (suite:/preset:/file:, the trb::serve grammar) resolve
 * to a CVP-1 stream which is converted with --imp and analyzed paired;
 * bare paths are read as ChampSim traces and analyzed stream-only.
 *
 * Region signatures (--regions N µops per region) are published to and
 * served from the TRB_STORE artifact cache when one is configured; the
 * matrices are built in one deterministic linear pass, and multiple
 * inputs fan out index-addressed on trb::par's pool, so all output is
 * bit-identical at any TRB_JOBS.
 *
 * Exit status: 0 clean (relative to --fail-on), 1 findings at or above
 * the --fail-on threshold, 2 usage error or unreadable input.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "convert/cvp2champsim.hh"
#include "convert/improvements.hh"
#include "experiments/experiment.hh"
#include "flow/analyze.hh"
#include "obs/metrics.hh"
#include "par/thread_pool.hh"
#include "serve/protocol.hh"
#include "synth/suites.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace
{

using namespace trb;

enum class FailOn
{
    None,
    Warn,
    Error,
};

struct CliOptions
{
    std::vector<std::string> inputs;   //!< positional traces or specs
    std::vector<std::string> cvps;     //!< --cvp files, paired by position
    std::string synthSuite;            //!< "cvp1" or "ipc1" (empty: inputs)
    ImprovementSet imps = kAllImps;    //!< converter config for specs
    std::uint64_t length = 50000;      //!< synthetic spec length
    flow::FlowOptions flowOpts;
    FailOn failOn = FailOn::Error;
    std::string jsonPath;              //!< "-" for stdout
    bool json = false;
    bool listRules = false;
};

void
usage(std::ostream &os)
{
    os << "usage: trace_analyze [options] <trace.champsim[.gz] | spec>...\n"
          "       trace_analyze [options] --synth cvp1|ipc1 [--imp SET]\n"
          "       trace_analyze --list-rules\n"
          "\n"
          "Whole-program static analysis of converted µop traces: CFG\n"
          "reconstruction, dataflow, CFG-aware lint rules and region\n"
          "signatures (no simulation).  A spec is suite:cvp1:<name>,\n"
          "suite:ipc1:<name>, preset:<kind>:<seed> or file:<path> (a\n"
          "CVP-1 trace), resolved and converted before paired analysis;\n"
          "a bare path is a ChampSim trace, analyzed stream-only.\n"
          "\n"
          "options:\n"
          "  --cvp FILE        originating CVP-1 trace for the Nth\n"
          "                    positional trace (repeatable); enables the\n"
          "                    paired rules\n"
          "  --synth SUITE     analyze conversions of the synthetic cvp1\n"
          "                    or ipc1 suite instead of inputs\n"
          "  --imp SET         improvement set for specs/--synth (default\n"
          "                    All_imps)\n"
          "  --length N        dynamic instructions for synthetic specs\n"
          "                    (default 50000)\n"
          "  --regions N       region length in µops (default 10000;\n"
          "                    0 disables region signatures)\n"
          "  --no-store        do not serve/publish region artifacts\n"
          "                    through TRB_STORE\n"
          "  --enable LIST     comma-separated rule ids to run (default\n"
          "                    all, streaming and whole-program)\n"
          "  --disable LIST    comma-separated rule ids to skip\n"
          "  --max-diag N      diagnostics stored per rule (default 20)\n"
          "  --fail-on KIND    error|warn|none: lowest severity that\n"
          "                    fails the run (default error)\n"
          "  --json[=FILE]     machine-readable report to FILE (default\n"
          "                    stdout)\n"
          "  --list-rules      print the rule catalog and exit\n"
          "  -h, --help        this text\n";
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

bool
isSpec(const std::string &arg)
{
    return arg.rfind("suite:", 0) == 0 || arg.rfind("preset:", 0) == 0 ||
           arg.rfind("file:", 0) == 0;
}

/** Parse argv; returns false (after printing to stderr) on bad usage. */
bool
parseArgs(int argc, char **argv, CliOptions &opts)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "trace_analyze: " << name
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            std::exit(0);
        } else if (arg == "--list-rules") {
            opts.listRules = true;
        } else if (arg == "--cvp") {
            const char *v = value("--cvp");
            if (!v)
                return false;
            opts.cvps.push_back(v);
        } else if (arg == "--synth") {
            const char *v = value("--synth");
            if (!v)
                return false;
            opts.synthSuite = v;
            if (opts.synthSuite != "cvp1" && opts.synthSuite != "ipc1") {
                std::cerr << "trace_analyze: --synth takes cvp1 or ipc1, "
                             "got '" << opts.synthSuite << "'\n";
                return false;
            }
        } else if (arg == "--imp") {
            const char *v = value("--imp");
            if (!v)
                return false;
            if (!parseImprovementSet(v, opts.imps)) {
                std::cerr << "trace_analyze: unknown improvement set '"
                          << v << "'\n";
                return false;
            }
        } else if (arg == "--length") {
            const char *v = value("--length");
            if (!v)
                return false;
            opts.length = std::strtoull(v, nullptr, 10);
        } else if (arg == "--regions") {
            const char *v = value("--regions");
            if (!v)
                return false;
            opts.flowOpts.regionUops = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-store") {
            opts.flowOpts.useStore = false;
        } else if (arg == "--enable") {
            const char *v = value("--enable");
            if (!v)
                return false;
            for (auto &id : splitList(v))
                opts.flowOpts.lint.enable.push_back(id);
        } else if (arg == "--disable") {
            const char *v = value("--disable");
            if (!v)
                return false;
            for (auto &id : splitList(v))
                opts.flowOpts.lint.disable.push_back(id);
        } else if (arg == "--max-diag") {
            const char *v = value("--max-diag");
            if (!v)
                return false;
            opts.flowOpts.lint.maxDiagnosticsPerRule =
                std::strtoull(v, nullptr, 10);
        } else if (arg.rfind("--fail-on", 0) == 0) {
            std::string v;
            if (arg.size() > 9 && arg[9] == '=') {
                v = arg.substr(10);
            } else {
                const char *p = value("--fail-on");
                if (!p)
                    return false;
                v = p;
            }
            if (v == "error") {
                opts.failOn = FailOn::Error;
            } else if (v == "warn") {
                opts.failOn = FailOn::Warn;
            } else if (v == "none") {
                opts.failOn = FailOn::None;
            } else {
                std::cerr << "trace_analyze: --fail-on takes error, warn "
                             "or none, got '" << v << "'\n";
                return false;
            }
        } else if (arg.rfind("--json", 0) == 0) {
            opts.json = true;
            opts.jsonPath =
                (arg.size() > 6 && arg[6] == '=') ? arg.substr(7) : "-";
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_analyze: unknown option '" << arg << "'\n";
            return false;
        } else {
            opts.inputs.push_back(arg);
        }
    }

    std::string bad;
    std::vector<std::string> resolved;
    if (!opts.flowOpts.lint.resolveRules(resolved, bad)) {
        std::cerr << "trace_analyze: unknown rule '" << bad
                  << "' (see --list-rules)\n";
        return false;
    }
    if (opts.listRules)
        return true;
    if (!opts.synthSuite.empty() && !opts.inputs.empty()) {
        std::cerr << "trace_analyze: --synth and inputs are mutually "
                     "exclusive\n";
        return false;
    }
    if (opts.synthSuite.empty() && opts.inputs.empty()) {
        usage(std::cerr);
        return false;
    }
    if (opts.cvps.size() > opts.inputs.size()) {
        std::cerr << "trace_analyze: more --cvp files than inputs\n";
        return false;
    }
    return true;
}

void
listRules()
{
    for (const lint::RuleInfo &info : lint::ruleCatalog()) {
        std::cout << info.id << " [" << lint::severityName(info.severity)
                  << (info.needsCvp ? ", paired" : "")
                  << (info.wholeProgram ? ", whole-program" : "") << "]\n    "
                  << info.summary << "\n    (" << info.citation << ")\n";
    }
}

/** One analysis job and its index-addressed result. */
struct Job
{
    std::size_t index = 0;
    std::string name;
    std::string input;     //!< ChampSim path or serve spec
    std::string cvpPath;   //!< empty: stream-only (paths only)
};

int
runInputs(const CliOptions &opts, std::vector<std::string> &names,
          std::vector<flow::FlowResult> &results)
{
    std::vector<Job> jobs;
    for (std::size_t i = 0; i < opts.inputs.size(); ++i) {
        Job job;
        job.index = i;
        job.input = opts.inputs[i];
        job.name = opts.inputs[i];
        if (i < opts.cvps.size())
            job.cvpPath = opts.cvps[i];
        jobs.push_back(std::move(job));
    }

    // Index-addressed fan-out: result i always belongs to input i, so
    // the output is schedule-independent.  Unreadable or corrupt inputs
    // land a Status in their slot instead of killing the process; the
    // first (in input order) is reported after the joins.
    std::vector<Status> failed(jobs.size());
    results = par::ThreadPool::global().parallelMap(
        jobs, [&](const Job &job) {
            if (isSpec(job.input)) {
                serve::ServeRequest req;
                req.trace = job.input;
                req.length = opts.length;
                Expected<CvpTrace> cvp = serve::resolveTrace(req);
                if (!cvp.ok()) {
                    failed[job.index] = cvp.status();
                    return flow::FlowResult{};
                }
                Cvp2ChampSim conv(opts.imps);
                ChampSimTrace cs = conv.convert(cvp.value());
                return flow::analyzeConverted(cvp.value(), cs,
                                              opts.flowOpts);
            }
            Expected<ChampSimTrace> cs = tryReadChampSimTrace(job.input);
            if (!cs.ok()) {
                failed[job.index] = cs.status();
                return flow::FlowResult{};
            }
            if (job.cvpPath.empty())
                return flow::analyzeTrace(cs.value(), opts.flowOpts);
            Expected<CvpTrace> cvp = tryReadCvpTrace(job.cvpPath);
            if (!cvp.ok()) {
                failed[job.index] = cvp.status();
                return flow::FlowResult{};
            }
            return flow::analyzeConverted(cvp.value(), cs.value(),
                                          opts.flowOpts);
        });
    for (const Status &status : failed) {
        if (!status.ok()) {
            std::cerr << "trace_analyze: " << status.toString() << "\n";
            return 2;
        }
    }
    for (const Job &job : jobs)
        names.push_back(job.name);
    return 0;
}

int
runSynth(const CliOptions &opts, std::vector<std::string> &names,
         std::vector<flow::FlowResult> &results)
{
    std::vector<TraceSpec> suite = opts.synthSuite == "cvp1"
                                       ? cvp1PublicSuite(opts.length)
                                       : ipc1Suite(opts.length);
    std::size_t count = suiteCount(suite);
    names.resize(count);
    results.resize(count);
    forEachTrace(suite, [&](std::size_t i, const TraceSpec &spec,
                            const CvpTrace &cvp) {
        Cvp2ChampSim conv(opts.imps);
        ChampSimTrace cs = conv.convert(cvp);
        names[i] = spec.name;
        results[i] = flow::analyzeConverted(cvp, cs, opts.flowOpts);
    });
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opts;
    if (!parseArgs(argc, argv, opts))
        return 2;
    if (opts.listRules) {
        listRules();
        return 0;
    }

    std::vector<std::string> names;
    std::vector<flow::FlowResult> results;
    int rc = opts.synthSuite.empty() ? runInputs(opts, names, results)
                                     : runSynth(opts, names, results);
    if (rc != 0)
        return rc;

    std::uint64_t errors = 0;
    std::uint64_t warnings = 0;
    for (std::size_t i = 0; i < results.size(); ++i) {
        errors += results[i].report.errors;
        warnings += results[i].report.warnings;
        flow::writeAnalysisText(std::cout, results[i], names[i]);
    }
    if (results.size() > 1)
        std::cout << "total: " << errors << " error(s), " << warnings
                  << " warning(s) across " << results.size()
                  << " trace(s)\n";

    if (opts.json) {
        std::ofstream file;
        std::ostream *os = &std::cout;
        if (opts.jsonPath != "-") {
            file.open(opts.jsonPath);
            if (!file) {
                std::cerr << "trace_analyze: cannot write '"
                          << opts.jsonPath << "'\n";
                return 2;
            }
            os = &file;
        }
        *os << "{\"reports\": [";
        for (std::size_t i = 0; i < results.size(); ++i) {
            if (i)
                *os << ", ";
            flow::writeAnalysisJson(*os, results[i], names[i]);
        }
        *os << "], \"totals\": {\"errors\": " << errors
            << ", \"warnings\": " << warnings << "}}\n";
    }

    obs::finish();   // honour TRB_OBS_JSON / TRB_OBS_CSV / TRB_OBS_SPANS

    switch (opts.failOn) {
      case FailOn::Error:
        return errors > 0 ? 1 : 0;
      case FailOn::Warn:
        return errors + warnings > 0 ? 1 : 0;
      case FailOn::None:
        return 0;
    }
    return 0;
}
