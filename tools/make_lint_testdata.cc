/**
 * @file
 * Regenerates the committed lint CI fixtures under tests/data/lint/:
 * three small deterministic synthetic CVP-1 traces plus their All_imps
 * and No_imp conversions, and five hand-built ChampSim-only traces each
 * seeding exactly one whole-program CFG defect.  CI lints the All_imps
 * pairs with --fail-on=error (must be clean), publishes the No_imp JSON
 * report as an artifact (must be full of findings), and gates the
 * cfg_* fixtures both ways: trace_lint must pass them (the defects are
 * invisible to a linear scan) while trace_analyze must flag them.
 *
 * Usage:  make_lint_testdata [output-dir]   (default tests/data/lint)
 */

#include <cstdio>
#include <filesystem>
#include <initializer_list>
#include <string>

#include "convert/cvp2champsim.hh"
#include "synth/generator.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

namespace
{

using namespace trb;

/** A plain ALU record: no branch flags, explicit reg slots. */
ChampSimRecord
alu(Addr pc, std::initializer_list<RegId> dsts,
    std::initializer_list<RegId> srcs)
{
    ChampSimRecord rec;
    rec.ip = pc;
    for (RegId d : dsts)
        rec.addDstReg(d);
    for (RegId s : srcs)
        rec.addSrcReg(s);
    return rec;
}

/**
 * A conditional branch under the patched deduction rules: writes the
 * IP, reads the IP plus one condition register (flags or a GPR), never
 * touches the stack pointer.
 */
ChampSimRecord
condBr(Addr pc, bool taken, RegId condReg)
{
    ChampSimRecord rec;
    rec.ip = pc;
    rec.isBranch = 1;
    rec.branchTaken = taken ? 1 : 0;
    rec.addDstReg(champsim::kInstructionPointer);
    rec.addSrcReg(champsim::kInstructionPointer);
    rec.addSrcReg(condReg);
    return rec;
}

/** A direct call: reads+writes IP and SP. */
ChampSimRecord
call(Addr pc)
{
    ChampSimRecord rec;
    rec.ip = pc;
    rec.isBranch = 1;
    rec.branchTaken = 1;
    rec.addDstReg(champsim::kInstructionPointer);
    rec.addDstReg(champsim::kStackPointer);
    rec.addSrcReg(champsim::kInstructionPointer);
    rec.addSrcReg(champsim::kStackPointer);
    return rec;
}

/** A return: reads+writes SP, writes (but never reads) the IP. */
ChampSimRecord
ret(Addr pc)
{
    ChampSimRecord rec;
    rec.ip = pc;
    rec.isBranch = 1;
    rec.branchTaken = 1;
    rec.addDstReg(champsim::kInstructionPointer);
    rec.addDstReg(champsim::kStackPointer);
    rec.addSrcReg(champsim::kStackPointer);
    return rec;
}

/**
 * cfg-stale-def: a three-block loop A -> B -> C -> A where A's first
 * µop canonically defines r7 and C reads it.  On two iterations the
 * def record drops its destination while a slot is free -- a linear
 * scan sees nothing (def-before-use is a paired rule and every branch
 * still deduces), but the whole-program pass witnesses C consuming the
 * stale value.
 */
ChampSimTrace
cfgStaleDefTrace()
{
    ChampSimTrace t;
    for (int iter = 0; iter < 30; ++iter) {
        ChampSimRecord def = alu(0x1000, {7}, {8});
        if (iter == 10 || iter == 20)
            def.destRegs[0] = 0;   // dropped def, slot provably free
        t.push_back(def);
        t.push_back(alu(0x1004, {8}, {}));
        t.push_back(condBr(0x1008, true, 7));
        t.push_back(alu(0x2000, {9}, {}));
        t.push_back(condBr(0x2004, true, 9));
        t.push_back(alu(0x3000, {10}, {7}));   // cross-block use of r7
        t.push_back(condBr(0x3004, true, 9));
    }
    return t;
}

/**
 * cfg-unreachable: block D at 0x1100 is only ever entered by a 252-byte
 * forward PC skip from A -- inside the streaming 4096-byte fall-through
 * window (pc-teleport stays quiet) but far beyond any static
 * neighbourhood, so no CFG edge ever explains D's entries.
 */
ChampSimTrace
cfgUnreachableTrace()
{
    ChampSimTrace t;
    for (int iter = 0; iter < 25; ++iter) {
        t.push_back(alu(0x1000, {7}, {}));
        t.push_back(alu(0x1004, {8}, {7}));
        t.push_back(alu(0x1100, {9}, {8}));   // 252-byte teleport entry
        t.push_back(condBr(0x1104, true, 9));
    }
    return t;
}

/**
 * cfg-fallthrough: the never-taken branch ending block A falls through
 * to 0x1008 on odd iterations and 0x1010 on even ones -- two distinct
 * static successors for one exit µop, impossible for real straight-line
 * code, yet every individual step is small enough to pass the streaming
 * continuity rule.
 */
ChampSimTrace
cfgFallthroughTrace()
{
    ChampSimTrace t;
    for (int iter = 0; iter < 24; ++iter) {
        t.push_back(alu(0x1000, {7}, {}));
        t.push_back(condBr(0x1004, false, 7));
        if (iter % 2 != 0)
            t.push_back(alu(0x1008, {8}, {7}));
        t.push_back(alu(0x1010, {9}, {7}));
        t.push_back(condBr(0x1014, true, 9));
    }
    return t;
}

/**
 * cfg-call-balance: every call from 0x1004 should resume at 0x1008, but
 * the callee's return lands at 0x3000 instead.  The RAS depth never
 * goes negative (calls and returns alternate, so ras-balance is happy);
 * only matching return targets against observed call fall-through PCs
 * exposes the imbalance.
 */
ChampSimTrace
cfgCallImbTrace()
{
    ChampSimTrace t;
    for (int iter = 0; iter < 15; ++iter) {
        t.push_back(alu(0x1000, {7}, {}));
        t.push_back(call(0x1004));
        t.push_back(alu(0x5000, {8}, {7}));
        t.push_back(ret(0x5004));
        t.push_back(alu(0x3000, {9}, {8}));   // not the call's pc+4
        t.push_back(condBr(0x3004, true, 9));
    }
    return t;
}

/**
 * cfg-flag-staleness: A's compare canonically produces the flags that
 * B's conditional consumes.  Two occurrences drop the flags
 * destination, so B branches on stale flags -- undetectable without
 * crossing the block boundary.
 */
ChampSimTrace
cfgStaleFlagsTrace()
{
    ChampSimTrace t;
    for (int iter = 0; iter < 30; ++iter) {
        ChampSimRecord cmp = alu(0x1000, {champsim::kFlags}, {7, 8});
        if (iter == 12 || iter == 24)
            cmp.destRegs[0] = 0;   // dropped flags def
        t.push_back(cmp);
        t.push_back(alu(0x1004, {7}, {}));
        t.push_back(condBr(0x1008, true, 7));
        t.push_back(alu(0x2000, {8}, {}));
        t.push_back(condBr(0x2004, true, champsim::kFlags));
        t.push_back(alu(0x3000, {9}, {8}));
        t.push_back(condBr(0x3004, true, 9));
    }
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace trb;

    std::string dir = argc >= 2 ? argv[1] : "tests/data/lint";
    std::filesystem::create_directories(dir);

    const struct
    {
        const char *name;
        WorkloadParams params;
    } fixtures[] = {
        {"srv_small", serverParams(7)},
        {"int_small", computeIntParams(1)},
        {"mem_small", memoryBoundParams(3)},
    };
    constexpr std::uint64_t kLength = 8000;

    for (const auto &f : fixtures) {
        WorkloadParams params = f.params;
        params.baseUpdateFrac = 0.08;   // make every defect class reachable
        params.blrX30Frac = 0.3;
        CvpTrace cvp = TraceGenerator(params).generate(kLength);

        std::string base = dir + "/" + f.name;
        writeCvpTrace(base + ".cvp.gz", cvp);
        for (ImprovementSet imps :
             {ImprovementSet{kAllImps}, ImprovementSet{kImpNone}}) {
            Cvp2ChampSim conv(imps);
            ChampSimTrace cs = conv.convert(cvp);
            std::string out = base + "." + improvementSetName(imps) +
                              ".champsimtrace.gz";
            writeChampSimTrace(out, cs);
            std::printf("%s: %zu records\n", out.c_str(), cs.size());
        }
    }

    const struct
    {
        const char *name;
        ChampSimTrace (*build)();
    } cfgFixtures[] = {
        {"cfg_staledef", cfgStaleDefTrace},
        {"cfg_unreachable", cfgUnreachableTrace},
        {"cfg_fallthrough", cfgFallthroughTrace},
        {"cfg_callimb", cfgCallImbTrace},
        {"cfg_staleflags", cfgStaleFlagsTrace},
    };
    for (const auto &f : cfgFixtures) {
        ChampSimTrace cs = f.build();
        std::string out = dir + "/" + f.name + ".champsimtrace.gz";
        writeChampSimTrace(out, cs);
        std::printf("%s: %zu records\n", out.c_str(), cs.size());
    }
    return 0;
}
