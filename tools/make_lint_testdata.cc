/**
 * @file
 * Regenerates the committed lint CI fixtures under tests/data/lint/:
 * three small deterministic synthetic CVP-1 traces plus their All_imps
 * and No_imp conversions.  CI lints the All_imps pairs with
 * --fail-on=error (must be clean) and publishes the No_imp JSON report
 * as an artifact (must be full of findings).
 *
 * Usage:  make_lint_testdata [output-dir]   (default tests/data/lint)
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "convert/cvp2champsim.hh"
#include "synth/generator.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    std::string dir = argc >= 2 ? argv[1] : "tests/data/lint";
    std::filesystem::create_directories(dir);

    const struct
    {
        const char *name;
        WorkloadParams params;
    } fixtures[] = {
        {"srv_small", serverParams(7)},
        {"int_small", computeIntParams(1)},
        {"mem_small", memoryBoundParams(3)},
    };
    constexpr std::uint64_t kLength = 8000;

    for (const auto &f : fixtures) {
        WorkloadParams params = f.params;
        params.baseUpdateFrac = 0.08;   // make every defect class reachable
        params.blrX30Frac = 0.3;
        CvpTrace cvp = TraceGenerator(params).generate(kLength);

        std::string base = dir + "/" + f.name;
        writeCvpTrace(base + ".cvp.gz", cvp);
        for (ImprovementSet imps :
             {ImprovementSet{kAllImps}, ImprovementSet{kImpNone}}) {
            Cvp2ChampSim conv(imps);
            ChampSimTrace cs = conv.convert(cvp);
            std::string out = base + "." + improvementSetName(imps) +
                              ".champsimtrace.gz";
            writeChampSimTrace(out, cs);
            std::printf("%s: %zu records\n", out.c_str(), cs.size());
        }
    }
    return 0;
}
