/**
 * @file
 * trace_client -- submit work to a running trace_served.
 *
 *   trace_client --ping
 *   trace_client --trace suite:cvp1:server_017 --imps All_imps
 *   trace_client --file requests.jsonl --retry-busy
 *   trace_client --stats --json BENCH_serve.json
 *
 * One process = one connection = one fairness lane on the daemon.
 * --file mode sends one request per line (each line a trb-serve-v1
 * request document) and waits for each reply before sending the next.
 * --stats prints the daemon's counter snapshot; with --json FILE the
 * same snapshot is also written as a trb-serve-v1 perf record (with a
 * derived throughput/items_per_second), so `trace_perf` directory mode
 * can diff daemon throughput between runs -- name the file
 * BENCH_serve.json to let the pairing find it.
 *
 * Exit status: 0 all replies ok, 1 an error reply (other than busy or
 * timeout), 2 usage/connect/transport failure, 3 still busy after
 * retries, 4 a deadline expired (a typed `timeout` reply).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include <unistd.h>

#include "common/env.hh"
#include "serve/client.hh"

namespace
{

using namespace trb;

void
usage(std::ostream &os)
{
    os << "usage: trace_client [--socket PATH] --ping\n"
          "       trace_client [--socket PATH] --stats [--json FILE]\n"
          "       trace_client [--socket PATH] --trace SPEC [options]\n"
          "       trace_client [--socket PATH] --file REQUESTS.jsonl "
          "[options]\n"
          "\n"
          "Submit trb-serve-v1 requests to a trace_served daemon (see\n"
          "docs/serving.md).\n"
          "\n"
          "options:\n"
          "  --socket PATH   daemon socket (default $TRB_SERVE_SOCKET\n"
          "                  or trb_serve.sock)\n"
          "  --ping          liveness probe\n"
          "  --stats         print the serve.*/store.* counter snapshot\n"
          "  --json FILE     with --stats: also write the snapshot as a\n"
          "                  trb-serve-v1 perf record for trace_perf\n"
          "  --trace SPEC    one simulation: suite:<suite>:<name>,\n"
          "                  preset:<kind>:<seed> or file:<path>\n"
          "  --length N      synthetic trace length (default 50000)\n"
          "  --imps NAME     improvement set (default No_imp)\n"
          "  --config NAME   modern or ipc1 (default modern)\n"
          "  --warmup F      warmup fraction in [0,1) (default 0)\n"
          "  --no-store      ask the daemon to bypass the artifact store\n"
          "  --id TAG        correlation tag echoed in the reply\n"
          "  --file PATH     send each line of PATH as one request\n"
          "  --retry-busy    back off and resubmit on busy replies\n"
          "                  (jittered per process, never in lockstep)\n"
          "  --deadline-ms N answer-by deadline per sim request; an\n"
          "                  expired one exits 4 (default\n"
          "                  $TRB_SERVE_DEADLINE_MS or unbounded)\n"
          "  --connect-timeout-ms N\n"
          "                  give up connecting after N ms (exit 2;\n"
          "                  default blocks)\n"
          "  -h, --help      this text\n";
}

/** Outcome of one reply, folded into the process exit code. */
struct Tally
{
    bool error = false;     //!< an error reply other than busy/timeout
    bool busy = false;      //!< busy after (any) retries
    bool timeout = false;   //!< a deadline expired
};

void
printReply(const serve::ServeReply &reply, Tally &tally)
{
    if (!reply.ok) {
        if (reply.error.errorClass() == ErrorClass::Busy)
            tally.busy = true;
        else if (reply.error.errorClass() == ErrorClass::Timeout)
            tally.timeout = true;
        else
            tally.error = true;
        std::printf("%s%s%s: %s\n", reply.op.c_str(),
                    reply.id.empty() ? "" : " ",
                    reply.id.c_str(), reply.error.toString().c_str());
        return;
    }
    if (reply.op == "sim") {
        std::printf("sim%s%s: seq %llu ipc %.4f insts %llu cycles %llu "
                    "trace_from_store %d stats_from_store %d\n",
                    reply.id.empty() ? "" : " ", reply.id.c_str(),
                    static_cast<unsigned long long>(reply.seq),
                    reply.stats.ipc(),
                    static_cast<unsigned long long>(
                        reply.stats.instructions),
                    static_cast<unsigned long long>(reply.stats.cycles),
                    reply.traceFromStore ? 1 : 0,
                    reply.statsFromStore ? 1 : 0);
    } else if (reply.op == "ping") {
        std::printf("ping: ok schema %s uptime %.3fs\n",
                    reply.raw.str("schema").c_str(),
                    reply.raw.number("uptime_s"));
    }
}

/** Render the stats reply for humans and (optionally) trace_perf. */
int
handleStats(const serve::ServeReply &reply, const std::string &jsonPath)
{
    std::printf("schema %s uptime %.3fs jobs %.0f queue_bound %.0f "
                "quantum %.0f\n",
                reply.raw.str("schema").c_str(),
                reply.raw.number("uptime_s"), reply.raw.number("jobs"),
                reply.raw.number("queue_bound"),
                reply.raw.number("quantum"));
    for (const auto &[path, value] : reply.raw.numbers)
        if (path.rfind("counters/", 0) == 0 ||
            path.rfind("gauges/", 0) == 0)
            std::printf("  %s %.0f\n",
                        path.substr(path.find('/') + 1).c_str(), value);

    if (jsonPath.empty())
        return 0;
    const double uptime = reply.raw.number("uptime_s");
    const double served = reply.raw.number("counters/serve.served");
    std::ofstream out(jsonPath);
    if (!out) {
        std::cerr << "trace_client: cannot write " << jsonPath << "\n";
        return 2;
    }
    out << "{\n  \"schema\": \"" << serve::kServeSchema << "\",\n"
        << "  \"uptime_s\": " << uptime << ",\n"
        << "  \"throughput\": {\"items_per_second\": "
        << (uptime > 0 ? served / uptime : 0.0) << "},\n"
        << "  \"counters\": {";
    bool first = true;
    for (const auto &[path, value] : reply.raw.numbers) {
        if (path.rfind("counters/", 0) != 0)
            continue;
        out << (first ? "" : ",") << "\n    \""
            << path.substr(std::strlen("counters/")) << "\": "
            << static_cast<unsigned long long>(value);
        first = false;
    }
    out << "\n  }\n}\n";
    return out.good() ? 0 : 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath = env::str("TRB_SERVE_SOCKET",
                                      "trb_serve.sock");
    std::string jsonPath, filePath, impsName = "No_imp";
    serve::ServeRequest req;
    req.deadlineMs = env::u64("TRB_SERVE_DEADLINE_MS", 0);
    unsigned connectTimeoutMs = 0;
    bool doPing = false, doStats = false, retryBusy = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "trace_client: " << name
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--socket") {
            const char *v = value("--socket");
            if (!v)
                return 2;
            socketPath = v;
        } else if (arg == "--ping") {
            doPing = true;
        } else if (arg == "--stats") {
            doStats = true;
        } else if (arg == "--json") {
            const char *v = value("--json");
            if (!v)
                return 2;
            jsonPath = v;
        } else if (arg == "--trace") {
            const char *v = value("--trace");
            if (!v)
                return 2;
            req.op = serve::Op::Sim;
            req.trace = v;
        } else if (arg == "--length") {
            const char *v = value("--length");
            if (!v)
                return 2;
            req.length = std::strtoull(v, nullptr, 10);
        } else if (arg == "--imps") {
            const char *v = value("--imps");
            if (!v)
                return 2;
            impsName = v;
        } else if (arg == "--config") {
            const char *v = value("--config");
            if (!v)
                return 2;
            if (std::strcmp(v, "ipc1") == 0)
                req.ipc1 = true;
            else if (std::strcmp(v, "modern") != 0) {
                std::cerr << "trace_client: --config wants modern or "
                             "ipc1\n";
                return 2;
            }
        } else if (arg == "--warmup") {
            const char *v = value("--warmup");
            if (!v)
                return 2;
            req.warmupFraction = std::strtod(v, nullptr);
        } else if (arg == "--no-store") {
            req.useStore = false;
        } else if (arg == "--id") {
            const char *v = value("--id");
            if (!v)
                return 2;
            req.id = v;
        } else if (arg == "--file") {
            const char *v = value("--file");
            if (!v)
                return 2;
            filePath = v;
        } else if (arg == "--retry-busy") {
            retryBusy = true;
        } else if (arg == "--deadline-ms") {
            const char *v = value("--deadline-ms");
            if (!v)
                return 2;
            req.deadlineMs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--connect-timeout-ms") {
            const char *v = value("--connect-timeout-ms");
            if (!v)
                return 2;
            connectTimeoutMs = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else {
            std::cerr << "trace_client: unknown argument '" << arg
                      << "'\n";
            usage(std::cerr);
            return 2;
        }
    }

    const int modes = int(doPing) + int(doStats) +
                      int(req.op == serve::Op::Sim) +
                      int(!filePath.empty());
    if (modes != 1) {
        std::cerr << "trace_client: pick exactly one of --ping, "
                     "--stats, --trace, --file\n";
        usage(std::cerr);
        return 2;
    }
    if (!parseImprovementSet(impsName, req.imps)) {
        std::cerr << "trace_client: unknown improvement set '"
                  << impsName << "'\n";
        return 2;
    }

    serve::ServeClient client;
    // A pid-keyed retry jitter: many clients rejected together back
    // off on distinct (but per-process reproducible) schedules.
    client.setRetryKey("trace_client-" + std::to_string(::getpid()));
    if (Status st = client.connect(socketPath, connectTimeoutMs);
        !st.ok()) {
        std::cerr << "trace_client: " << st.toString() << "\n";
        return 2;
    }

    Tally tally;
    serve::ServeReply reply;

    auto callOnce = [&](const serve::ServeRequest &r) -> bool {
        Status st = retryBusy ? client.callRetryBusy(r, reply)
                              : client.call(r, reply);
        if (!st.ok()) {
            std::cerr << "trace_client: " << st.toString() << "\n";
            return false;
        }
        return true;
    };

    if (doPing) {
        req.op = serve::Op::Ping;
        if (!callOnce(req))
            return 2;
        printReply(reply, tally);
    } else if (doStats) {
        req.op = serve::Op::Stats;
        if (!callOnce(req))
            return 2;
        if (int rc = handleStats(reply, jsonPath); rc != 0)
            return rc;
    } else if (!filePath.empty()) {
        std::ifstream in(filePath);
        if (!in) {
            std::cerr << "trace_client: cannot read " << filePath
                      << "\n";
            return 2;
        }
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            if (line.empty())
                continue;
            serve::ServeRequest fileReq;
            if (Status st = serve::parseRequest(line, fileReq);
                !st.ok()) {
                std::cerr << "trace_client: " << filePath << ":"
                          << lineno << ": " << st.toString() << "\n";
                return 2;
            }
            if (!callOnce(fileReq))
                return 2;
            printReply(reply, tally);
        }
    } else {
        if (!callOnce(req))
            return 2;
        printReply(reply, tally);
    }

    if (tally.busy)
        return 3;
    if (tally.timeout)
        return 4;
    return tally.error ? 1 : 0;
}
