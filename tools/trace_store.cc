/**
 * @file
 * trace_store -- inspect and maintain a trb::store artifact cache.
 *
 *   trace_store ls                      # one line per artifact
 *   trace_store gc --max-bytes 64M      # LRU-evict down to a budget
 *   trace_store verify                  # re-digest everything
 *
 * The store directory comes from --store DIR or, failing that, the
 * TRB_STORE environment variable (the same knob the simulator honours).
 * `ls` prints kind, size, age rank and key for every artifact, sorted
 * by file name so the output is stable; `gc` always removes stale
 * temporaries and quarantined .bad files, then evicts least-recently-
 * used artifacts until the store fits the budget; `verify` re-checks
 * every header, key and payload digest and quarantines what fails.
 *
 * Exit status: 0 success (for verify: all artifacts clean), 1 verify
 * found and quarantined damage, 2 usage error or no store configured.
 */

#include <cctype>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/env.hh"
#include "store/store.hh"

namespace
{

using namespace trb;

void
usage(std::ostream &os)
{
    os << "usage: trace_store [--store DIR] ls\n"
          "       trace_store [--store DIR] gc --max-bytes N[K|M|G]\n"
          "       trace_store [--store DIR] verify\n"
          "\n"
          "Inspect and maintain a trb::store artifact cache.  The store\n"
          "directory is --store DIR, or $TRB_STORE when the flag is\n"
          "absent.\n"
          "\n"
          "subcommands:\n"
          "  ls                one line per artifact: kind, bytes, file,\n"
          "                    key (sorted by file name)\n"
          "  gc                evict least-recently-used artifacts until\n"
          "                    the store is at most --max-bytes; stale\n"
          "                    temporaries and .bad files always go\n"
          "  verify            re-digest every artifact, quarantining\n"
          "                    (renaming to .bad) any that fail\n"
          "\n"
          "options:\n"
          "  --store DIR       store directory (default $TRB_STORE)\n"
          "  --max-bytes N     gc budget; accepts K/M/G suffixes\n"
          "  -h, --help        this text\n";
}

/** Parse "64", "64K", "64M", "64G"; false on anything else. */
bool
parseBytes(const std::string &text, std::uint64_t &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    unsigned long long value = std::strtoull(text.c_str(), &end, 10);
    if (end == text.c_str())
        return false;
    std::uint64_t mult = 1;
    if (*end != '\0') {
        switch (std::toupper(static_cast<unsigned char>(*end))) {
          case 'K':
            mult = 1024ull;
            break;
          case 'M':
            mult = 1024ull * 1024;
            break;
          case 'G':
            mult = 1024ull * 1024 * 1024;
            break;
          default:
            return false;
        }
        if (end[1] != '\0')
            return false;
    }
    out = static_cast<std::uint64_t>(value) * mult;
    return true;
}

const char *
kindName(std::uint32_t kind)
{
    switch (kind) {
      case store::kTraceArtifact:
        return "trace";
      case store::kStatsArtifact:
        return "stats";
      default:
        return "?";
    }
}

int
runLs(store::Store &st)
{
    std::uint64_t total = 0;
    std::vector<store::ArtifactInfo> items = st.list();
    for (const store::ArtifactInfo &info : items) {
        total += info.bytes;
        if (info.status.ok()) {
            std::printf("%-5s %12" PRIu64 "  %s  %s\n",
                        kindName(info.kind), info.bytes, info.file.c_str(),
                        info.key.c_str());
        } else {
            std::printf("%-5s %12" PRIu64 "  %s  [damaged: %s]\n", "?",
                        info.bytes, info.file.c_str(),
                        info.status.toString().c_str());
        }
    }
    std::printf("total: %zu artifact(s), %" PRIu64 " byte(s)\n",
                items.size(), total);
    return 0;
}

int
runGc(store::Store &st, std::uint64_t maxBytes)
{
    store::Store::GcResult res = st.gc(maxBytes);
    std::printf("scanned %" PRIu64 " artifact(s), %" PRIu64
                " byte(s); evicted %" PRIu64 " (%" PRIu64 " byte(s))\n",
                res.scanned, res.totalBytes, res.evicted,
                res.evictedBytes);
    return 0;
}

int
runVerify(store::Store &st)
{
    store::Store::VerifyResult res = st.verify();
    for (const store::ArtifactInfo &info : res.bad)
        std::printf("quarantined %s: %s\n", info.file.c_str(),
                    info.status.toString().c_str());
    std::printf("checked %" PRIu64 " artifact(s): %" PRIu64 " ok, %zu "
                "quarantined\n",
                res.checked, res.ok, res.bad.size());
    return res.bad.empty() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir;
    std::string command;
    std::string maxBytesText;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "trace_store: " << name
                          << " needs an argument\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (arg == "--store") {
            const char *v = value("--store");
            if (!v)
                return 2;
            dir = v;
        } else if (arg == "--max-bytes") {
            const char *v = value("--max-bytes");
            if (!v)
                return 2;
            maxBytesText = v;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "trace_store: unknown option '" << arg << "'\n";
            return 2;
        } else if (command.empty()) {
            command = arg;
        } else {
            std::cerr << "trace_store: unexpected argument '" << arg
                      << "'\n";
            return 2;
        }
    }

    if (command.empty()) {
        usage(std::cerr);
        return 2;
    }
    if (command != "ls" && command != "gc" && command != "verify") {
        std::cerr << "trace_store: unknown subcommand '" << command
                  << "' (ls, gc, verify)\n";
        return 2;
    }

    if (dir.empty())
        dir = env::str("TRB_STORE");
    if (dir.empty()) {
        std::cerr << "trace_store: no store configured (pass --store DIR "
                     "or set TRB_STORE)\n";
        return 2;
    }

    std::uint64_t maxBytes = 0;
    if (command == "gc") {
        if (maxBytesText.empty()) {
            std::cerr << "trace_store: gc needs --max-bytes\n";
            return 2;
        }
        if (!parseBytes(maxBytesText, maxBytes)) {
            std::cerr << "trace_store: bad --max-bytes '" << maxBytesText
                      << "' (want N, NK, NM or NG)\n";
            return 2;
        }
    } else if (!maxBytesText.empty()) {
        std::cerr << "trace_store: --max-bytes only applies to gc\n";
        return 2;
    }

    store::Store st(dir);
    if (command == "ls")
        return runLs(st);
    if (command == "gc")
        return runGc(st, maxBytes);
    return runVerify(st);
}
