/**
 * @file
 * Lint demo: a deliberately broken conversion caught statically.
 *
 * Converts one synthetic CVP-1 workload twice -- once with the original
 * (unimproved) converter, once fully improved -- and runs trb::lint over
 * both.  The unimproved stream trips several of the paper's defect
 * classes (mem-dest-regs, base-update-split, flag-dest, and friends);
 * the improved stream is clean.  No simulation runs: every finding comes
 * from a linear scan of the trace.
 *
 * Usage:  lint_demo [seed] [length]
 */

#include <cstdlib>
#include <iostream>

#include "convert/cvp2champsim.hh"
#include "lint/lint.hh"
#include "synth/generator.hh"
#include "synth/params.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    std::uint64_t seed = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 7;
    std::uint64_t length =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 50000;

    WorkloadParams params = serverParams(seed);
    params.baseUpdateFrac = 0.08;   // plenty of writeback loads to break
    CvpTrace cvp = TraceGenerator(params).generate(length);

    lint::LintOptions opts;
    opts.maxDiagnosticsPerRule = 2;   // a taste of each defect class

    std::cout << "== original converter (No_imp) ==\n";
    ChampSimTrace broken = Cvp2ChampSim(kImpNone).convert(cvp);
    lint::LintReport dirty = lint::lintConverted(cvp, broken, opts);
    lint::writeReportText(std::cout, dirty, "No_imp");

    std::cout << "\n== improved converter (All_imps) ==\n";
    ChampSimTrace fixed = Cvp2ChampSim(kAllImps).convert(cvp);
    lint::LintReport clean = lint::lintConverted(cvp, fixed, opts);
    lint::writeReportText(std::cout, clean, "All_imps");

    std::cout << "\nrules tripped by the unimproved conversion: "
              << dirty.counts.size() << "; by the improved conversion: "
              << clean.counts.size() << "\n";
    return clean.clean() ? 0 : 1;
}
