/**
 * @file
 * A miniature IPC-1: run the eight instruction-prefetcher submissions on
 * a handful of front-end-bound synthetic traces under the championship
 * configuration (coupled front-end, ideal target predictor, 50% warm-up)
 * and print the ranking -- on competition-style traces and on traces
 * fixed by the improved converter.
 *
 * Usage:  prefetch_championship [traces] [length]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "experiments/experiment.hh"
#include "ipref/instr_prefetcher.hh"
#include "par/thread_pool.hh"
#include "synth/generator.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    std::size_t ntraces =
        argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 6;
    std::uint64_t length =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 120000;

    CoreParams core = ipc1Config();
    // Pre-populated maps + pre-sized vectors: concurrent tasks assign
    // distinct elements, so the ranking is identical for any TRB_JOBS.
    std::map<std::string, std::vector<double>> speedups[2];
    for (int v = 0; v < 2; ++v)
        for (const std::string &name : ipc1PrefetcherNames())
            speedups[v][name].resize(ntraces);
    std::vector<std::string> reports(ntraces);
    const ImprovementSet sets[2] = {kImpNone, kIpc1Imps};

    par::ThreadPool::global().parallelFor(ntraces, [&](std::size_t i) {
        WorkloadParams params = serverParams(1000 + i);
        params.numFunctions = 400 + 150 * static_cast<unsigned>(i);
        CvpTrace cvp = TraceGenerator(params).generate(length);
        for (int v = 0; v < 2; ++v) {
            Cvp2ChampSim conv(sets[v]);
            ChampSimTrace trace = conv.convert(cvp);
            SimStats base = simulate(ChampSimView(trace),
                                     {.params = core,
                                      .warmupFraction = 0.5}).stats;
            char buf[96];
            std::snprintf(buf, sizeof(buf),
                          "trace %zu (%s): baseline IPC %.3f, L1I MPKI "
                          "%.1f\n",
                          i, v ? "fixed" : "competition", base.ipc(),
                          base.l1iMpki());
            reports[i] += buf;
            for (const std::string &name : ipc1PrefetcherNames()) {
                auto pf = makeInstrPrefetcher(name);
                SimStats s = simulate(ChampSimView(trace),
                                      {.params = core,
                                       .warmupFraction = 0.5,
                                       .ipref = pf.get()}).stats;
                speedups[v].at(name)[i] = s.ipc() / base.ipc();
            }
        }
    });
    for (const std::string &report : reports)
        std::printf("%s", report.c_str());

    for (int v = 0; v < 2; ++v) {
        std::vector<std::pair<double, std::string>> rank;
        for (auto &[name, ratios] : speedups[v])
            rank.emplace_back(geomean(ratios), name);
        std::sort(rank.rbegin(), rank.rend());
        std::printf("\n=== %s traces ===\n",
                    v ? "Fixed" : "Competition");
        for (std::size_t r = 0; r < rank.size(); ++r)
            std::printf("%zu. %-10s %.4f\n", r + 1,
                        rank[r].second.c_str(), rank[r].first);
    }
    return 0;
}
