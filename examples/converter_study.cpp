/**
 * @file
 * Converter study: a miniature Figure 1 on a single workload.  Applies
 * every improvement individually to one synthetic CVP-1 trace and shows
 * the converted-trace differences plus the projected IPC deltas, with
 * the conversion statistics that explain them.
 *
 * Usage:  converter_study [seed] [length]
 */

#include <cstdio>
#include <cstdlib>

#include "experiments/experiment.hh"
#include "synth/generator.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    std::uint64_t seed = argc >= 2 ? std::strtoull(argv[1], nullptr, 10) : 7;
    std::uint64_t length =
        argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 80000;

    WorkloadParams params = serverParams(seed);
    params.blrX30Frac = 0.4;
    params.baseUpdateFrac = 0.05;
    CvpTrace cvp = TraceGenerator(params).generate(length);
    CoreParams core = modernConfig();

    SimStats base = simulate(cvp, {.imps = kImpNone, .params = core}).stats;
    std::printf("baseline (No_imp): IPC %.3f, branch MPKI %.2f, return "
                "MPKI %.2f\n\n",
                base.ipc(), base.branchMpki(), base.returnMpki());

    std::printf("%-15s %9s %9s %12s  conversion notes\n", "improvement",
                "dIPC", "records", "retMPKI");
    for (const NamedSet &ns : figureOneSets()) {
        Cvp2ChampSim conv(ns.set);
        ChampSimTrace out = conv.convert(cvp);
        SimStats s = simulate(ChampSimView(out), {.params = core}).stats;
        const ConvStats &cs = conv.stats();

        std::printf("%-15s %+8.2f%% %9zu %12.2f  ", ns.name,
                    100.0 * (s.ipc() / base.ipc() - 1.0), out.size(),
                    s.returnMpki());
        if (cs.splitMicroOps)
            std::printf("splits=%llu (pre=%llu post=%llu) ",
                        static_cast<unsigned long long>(cs.splitMicroOps),
                        static_cast<unsigned long long>(cs.baseUpdatePre),
                        static_cast<unsigned long long>(cs.baseUpdatePost));
        if (cs.callsReclassified)
            std::printf("calls-fixed=%llu ",
                        static_cast<unsigned long long>(
                            cs.callsReclassified));
        if (cs.flagDstsAdded)
            std::printf("flag-dsts=%llu ",
                        static_cast<unsigned long long>(cs.flagDstsAdded));
        if (cs.branchSrcsPreserved)
            std::printf("branch-srcs=%llu ",
                        static_cast<unsigned long long>(
                            cs.branchSrcsPreserved));
        if (cs.lineCrossing)
            std::printf("line-splits=%llu ",
                        static_cast<unsigned long long>(cs.lineCrossing));
        if (cs.droppedDstRegs && ns.set == kImpNone)
            std::printf("dropped-dsts=%llu ",
                        static_cast<unsigned long long>(
                            cs.droppedDstRegs));
        std::printf("\n");
    }
    return 0;
}
