/**
 * @file
 * Pipeline viewer: run a real simulation with the event tracer attached
 * and print a gem5-O3PipeView-style text lane view of the instruction
 * lifecycle (fetch/dispatch/issue/complete/retire stamps, squashes) for
 * a PC range, plus the metrics-registry summary of the run.
 *
 * Usage:
 *   ./build/examples/pipeline_viewer [lo_pc hi_pc [max_instrs]]
 *
 * PC bounds are hex (e.g. 0x400000); default shows the first 60 traced
 * instructions of any PC.  Knobs:
 *   TRB_TRACE_LEN   instructions to simulate (default 20000)
 *   TRB_TRACE_BUF   tracer ring capacity (default 65536)
 *   TRB_PIPE_JSON   also write a Chrome trace_event file (load in
 *                   chrome://tracing or Perfetto)
 *   TRB_OBS_JSON    dump the metrics registry as JSON
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/env.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/pipeline_trace.hh"
#include "pipeline/o3core.hh"
#include "sim/simulator.hh"
#include "synth/generator.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    Addr lo = 0, hi = ~Addr{0};
    std::size_t max_instrs = 60;
    if (argc >= 3) {
        lo = std::strtoull(argv[1], nullptr, 16);
        hi = std::strtoull(argv[2], nullptr, 16);
        max_instrs = 0;
    }
    if (argc >= 4)
        max_instrs = std::strtoull(argv[3], nullptr, 10);

    // A call-heavy server workload gives the lane view mispredictions
    // and cache misses worth looking at.
    WorkloadParams params = serverParams(/*seed=*/7);
    TraceGenerator generator(params);
    CvpTrace cvp = generator.generate(traceLengthFromEnv(20000));
    Cvp2ChampSim conv(kAllImps);
    ChampSimTrace trace = conv.convert(cvp);

    obs::PipelineTracer tracer;
    O3Core core(modernConfig());
    core.setTracer(&tracer);
    SimStats stats = core.run(trace);

    std::printf("simulated %llu instructions in %llu cycles "
                "(IPC %.3f, branch MPKI %.2f); tracer holds the last "
                "%zu of %llu records\n\n",
                static_cast<unsigned long long>(stats.instructions),
                static_cast<unsigned long long>(stats.cycles), stats.ipc(),
                stats.branchMpki(), tracer.size(),
                static_cast<unsigned long long>(tracer.recorded()));

    std::fputs(obs::renderLaneView(tracer.events(), lo, hi, max_instrs)
                   .c_str(),
               stdout);

    if (const char *path = env::raw("TRB_PIPE_JSON");
        path && *path) {
        std::ofstream out(path);
        if (out) {
            tracer.writeChromeTrace(out);
            trb_inform("wrote Chrome trace to ", path,
                       " (open in chrome://tracing)");
        } else {
            trb_warn("cannot open ", path, " for the Chrome trace");
        }
    }

    stats.exportTo(obs::MetricsRegistry::global(), "sim");
    core.memory().exportMetrics(obs::MetricsRegistry::global(),
                                "sim.cache.raw");
    obs::finish();
    return 0;
}
