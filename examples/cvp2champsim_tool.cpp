/**
 * @file
 * The artifact-style converter CLI:
 *
 *   cvp2champsim_tool -t <trace.cvp[.gz]> [-i <improvement>] [-o <out>]
 *
 * where <improvement> is one of the artifact's names (No_imp, All_imps,
 * Memory_imps, Branch_imps, IPC1_imps, imp_mem-regs, imp_base-update,
 * imp_mem-footprint, imp_call-stack, imp_branch-regs, imp_flag-regs;
 * default All_imps).  Without -o, the converted trace goes to
 * <trace>.champsimtrace (add .gz to compress).  Conversion statistics
 * are printed to stderr.
 *
 * Exit status: 0 success, 1 usage error, 2 unreadable/corrupt input or
 * failed output (one-line diagnostic on stderr, never a crash).
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "convert/cvp2champsim.hh"
#include "trace/champsim_trace.hh"
#include "trace/cvp_trace.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    std::string input;
    std::string output;
    std::string imp_name = "All_imps";

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "-t") == 0 && i + 1 < argc)
            input = argv[++i];
        else if (std::strcmp(argv[i], "-i") == 0 && i + 1 < argc)
            imp_name = argv[++i];
        else if (std::strcmp(argv[i], "-o") == 0 && i + 1 < argc)
            output = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: %s -t trace.cvp[.gz] [-i improvement] "
                         "[-o out.champsimtrace[.gz]]\n",
                         argv[0]);
            return 1;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "missing -t <trace>\n");
        return 1;
    }
    ImprovementSet imps = 0;
    if (!parseImprovementSet(imp_name, imps)) {
        std::fprintf(stderr, "unknown improvement set '%s'\n",
                     imp_name.c_str());
        return 1;
    }
    if (output.empty())
        output = input + ".champsimtrace";

    // Stream: CVP-1 records in, ChampSim records out.  Malformed input
    // gets a one-line diagnostic and a distinct exit code, not a crash.
    CvpTraceReader reader;
    if (Status st = reader.open(input); !st.ok()) {
        std::fprintf(stderr, "cvp2champsim: %s\n", st.toString().c_str());
        return 2;
    }
    Cvp2ChampSim conv(imps);
    ChampSimTrace out;
    // Cap the reservation: a corrupt header can promise absurd counts.
    std::uint64_t expect =
        std::min<std::uint64_t>(reader.count(), std::uint64_t{1} << 22);
    out.reserve(expect + expect / 8);
    CvpRecord rec;
    while (reader.next(rec))
        conv.convertOne(rec, out);
    if (!reader.status().ok()) {
        std::fprintf(stderr, "cvp2champsim: %s\n",
                     reader.status().toString().c_str());
        return 2;
    }
    if (Status st = reader.finish(); !st.ok()) {
        std::fprintf(stderr, "cvp2champsim: %s\n", st.toString().c_str());
        return 2;
    }
    if (Status st = tryWriteChampSimTrace(output, out); !st.ok()) {
        std::fprintf(stderr, "cvp2champsim: %s\n", st.toString().c_str());
        return 2;
    }

    const ConvStats &s = conv.stats();
    std::fprintf(stderr,
                 "%s: %llu CVP-1 -> %llu ChampSim instructions (%s)\n",
                 output.c_str(),
                 static_cast<unsigned long long>(s.cvpInstructions),
                 static_cast<unsigned long long>(s.champsimInstructions),
                 improvementSetName(imps).c_str());
    std::fprintf(stderr,
                 "  base updates: %llu pre, %llu post; calls fixed: %llu; "
                 "flag dsts: %llu; line splits: %llu; X0 inserted: %llu\n",
                 static_cast<unsigned long long>(s.baseUpdatePre),
                 static_cast<unsigned long long>(s.baseUpdatePost),
                 static_cast<unsigned long long>(s.callsReclassified),
                 static_cast<unsigned long long>(s.flagDstsAdded),
                 static_cast<unsigned long long>(s.lineCrossing),
                 static_cast<unsigned long long>(s.x0InsertedMem));
    return 0;
}
