/**
 * @file
 * Trace inspector: generate or load a CVP-1 trace, characterise it, and
 * show how both converter personalities see its instructions.
 *
 * Usage:
 *   trace_inspector                      # inspect a built-in workload
 *   trace_inspector <preset> [length]    # preset: int|fp|crypto|server|mem
 *   trace_inspector -f <file.cvp[.gz]>   # inspect a trace file
 *
 * Also demonstrates the file round-trip: the generated trace is written
 * to a temporary .gz file and re-read through the streaming reader.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "convert/cvp2champsim.hh"
#include "synth/generator.hh"
#include "trace/trace_stats.hh"

int
main(int argc, char **argv)
{
    using namespace trb;

    CvpTrace trace;
    std::string label;

    if (argc >= 3 && std::strcmp(argv[1], "-f") == 0) {
        label = argv[2];
        trace = readCvpTrace(argv[2]);
    } else {
        std::string preset = argc >= 2 ? argv[1] : "server";
        std::uint64_t length =
            argc >= 3 ? std::strtoull(argv[2], nullptr, 10) : 50000;
        WorkloadParams params;
        if (preset == "int")
            params = computeIntParams(1);
        else if (preset == "fp")
            params = computeFpParams(1);
        else if (preset == "crypto")
            params = cryptoParams(1);
        else if (preset == "server")
            params = serverParams(1);
        else if (preset == "mem")
            params = memoryBoundParams(1);
        else {
            std::fprintf(stderr,
                         "unknown preset '%s' (int|fp|crypto|server|mem)\n",
                         preset.c_str());
            return 1;
        }
        label = preset;
        trace = TraceGenerator(params).generate(length);

        // Round-trip through a gz file, exercising the I/O layer.
        auto path = std::filesystem::temp_directory_path() /
                    "trb_inspect.cvp.gz";
        writeCvpTrace(path.string(), trace);
        CvpTrace back = readCvpTrace(path.string());
        std::printf("round-trip through %s: %zu records, %s\n\n",
                    path.string().c_str(), back.size(),
                    back.size() == trace.size() ? "ok" : "MISMATCH");
        std::filesystem::remove(path);
    }

    std::printf("=== CVP-1 characterisation of '%s' ===\n%s\n",
                label.c_str(), characterizeCvp(trace).report().c_str());

    for (ImprovementSet imps : {ImprovementSet{kImpNone}, ImprovementSet{kAllImps}}) {
        Cvp2ChampSim conv(imps);
        ChampSimTrace out = conv.convert(trace);
        DeductionRules rules = (imps & kImpBranchRegs)
                                   ? DeductionRules::Patched
                                   : DeductionRules::Original;
        std::printf("=== ChampSim view under %s ===\n%s\n",
                    improvementSetName(imps).c_str(),
                    characterizeChampSim(out, rules).report().c_str());
    }
    return 0;
}
