/**
 * @file
 * Quickstart: the whole TraceRebase pipeline in one page.
 *
 *   1. generate a synthetic CVP-1 trace (a stand-in for the Qualcomm
 *      championship traces),
 *   2. convert it to the ChampSim format with the original converter and
 *      with all of the paper's improvements,
 *   3. simulate both conversions on the ChampSim-class core model,
 *   4. compare the projected performance.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "convert/cvp2champsim.hh"
#include "sim/simulator.hh"
#include "synth/generator.hh"

int
main()
{
    using namespace trb;

    // 1. A server-like workload: call-heavy, big instruction footprint,
    //    with some BLR X30 indirect calls (the call-stack bug trigger).
    WorkloadParams params = serverParams(/*seed=*/42);
    params.blrX30Frac = 0.5;
    TraceGenerator generator(params);
    CvpTrace cvp = generator.generate(100000);
    std::printf("generated %zu CVP-1 instructions\n", cvp.size());

    // 2. Convert twice: original converter vs all improvements.
    Cvp2ChampSim original(kImpNone);
    ChampSimTrace trace_orig = original.convert(cvp);
    Cvp2ChampSim improved(kAllImps);
    ChampSimTrace trace_imp = improved.convert(cvp);
    std::printf("converted: %zu records (original), %zu records "
                "(improved; +%llu split micro-ops)\n",
                trace_orig.size(), trace_imp.size(),
                static_cast<unsigned long long>(
                    improved.stats().splitMicroOps));
    std::printf("improved conversion: %llu base updates inferred, %llu "
                "calls reclassified, %llu flag destinations added\n",
                static_cast<unsigned long long>(
                    improved.stats().baseUpdatePre +
                    improved.stats().baseUpdatePost),
                static_cast<unsigned long long>(
                    improved.stats().callsReclassified),
                static_cast<unsigned long long>(
                    improved.stats().flagDstsAdded));

    // 3. Simulate on the paper's modern configuration.
    CoreParams core = modernConfig();
    SimStats s_orig = simulate(ChampSimView(trace_orig),
                               {.params = core}).stats;
    SimStats s_imp = simulate(ChampSimView(trace_imp),
                              {.params = core}).stats;

    // 4. Compare.
    std::printf("\n%-28s %10s %10s\n", "metric", "original", "improved");
    std::printf("%-28s %10.3f %10.3f\n", "IPC", s_orig.ipc(), s_imp.ipc());
    std::printf("%-28s %10.2f %10.2f\n", "branch MPKI",
                s_orig.branchMpki(), s_imp.branchMpki());
    std::printf("%-28s %10.2f %10.2f\n", "return-target MPKI",
                s_orig.returnMpki(), s_imp.returnMpki());
    std::printf("%-28s %10.2f %10.2f\n", "L1I MPKI", s_orig.l1iMpki(),
                s_imp.l1iMpki());
    std::printf("%-28s %10.2f %10.2f\n", "L1D MPKI", s_orig.l1dMpki(),
                s_imp.l1dMpki());
    std::printf("\nIPC difference from higher-fidelity conversion: "
                "%+.2f%%\n",
                100.0 * (s_imp.ipc() / s_orig.ipc() - 1.0));
    return 0;
}
